#ifndef DOCS_COMMON_STRING_UTILS_H_
#define DOCS_COMMON_STRING_UTILS_H_

#include <string>
#include <string_view>
#include <vector>

namespace docs {

/// Returns `s` lowercased (ASCII only; the KB and datasets are ASCII).
std::string ToLower(std::string_view s);

/// Splits on any character in `delims`, dropping empty pieces.
std::vector<std::string> Split(std::string_view s, std::string_view delims);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Strips leading/trailing ASCII whitespace.
std::string Trim(std::string_view s);

/// True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// Tokenizes text for NLP use: lowercases, treats any non-alphanumeric as a
/// separator, drops empty tokens.
std::vector<std::string> TokenizeWords(std::string_view text);

/// Thread-safe strerror: renders `errnum` into an owned string via
/// strerror_r. std::strerror returns a pointer into static storage and is
/// flagged by concurrency-mt-unsafe — every error-formatting site in the
/// multi-threaded serving path goes through this instead.
std::string ErrnoString(int errnum);

}  // namespace docs

#endif  // DOCS_COMMON_STRING_UTILS_H_
