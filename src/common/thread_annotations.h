#ifndef DOCS_COMMON_THREAD_ANNOTATIONS_H_
#define DOCS_COMMON_THREAD_ANNOTATIONS_H_

/// Clang Thread Safety Analysis attribute macros (DESIGN.md §14).
///
/// These turn the prose lock discipline of the serving core — which mutex
/// guards which field, which order locks may be taken in — into declarations
/// the compiler checks on every build with clang:
///
///     clang++ ... -Wthread-safety -Wthread-safety-beta -Werror
///     (cmake -DDOCS_THREAD_SAFETY=ON; scripts/ci.sh runs it when clang is
///     installed and skips with a notice otherwise)
///
/// On gcc (the default container toolchain) every macro expands to nothing,
/// so annotated code compiles identically everywhere; the annotations are a
/// compile-time contract, not a runtime mechanism. TSan remains the dynamic
/// complement: the analysis proves lock *discipline* on all paths including
/// ones no test executes, TSan catches raciness the capability model cannot
/// express (atomics ordering, lock-free hand-off).
///
/// Use the docs::Mutex / docs::SharedMutex / docs::CondVar wrappers from
/// common/sync.h — raw std primitives carry no capability attributes, so the
/// analysis cannot see them (and scripts/lint.py rejects them outside
/// sync.h). Vocabulary (mirroring clang's documentation):
///
///   DOCS_CAPABILITY(name)      — this class is a lockable capability
///   DOCS_SCOPED_CAPABILITY     — RAII object acquiring/releasing one
///   DOCS_GUARDED_BY(mu)        — field may only be touched holding mu
///   DOCS_PT_GUARDED_BY(mu)     — pointee may only be touched holding mu
///   DOCS_REQUIRES(mu...)       — caller must already hold mu exclusively
///   DOCS_REQUIRES_SHARED(mu...)— caller must hold mu at least shared
///   DOCS_ACQUIRE / DOCS_RELEASE (+ _SHARED / _GENERIC variants)
///   DOCS_TRY_ACQUIRE(result, mu...) — conditional acquisition
///   DOCS_EXCLUDES(mu...)       — caller must NOT hold mu (deadlock fence)
///   DOCS_ACQUIRED_BEFORE/AFTER — static lock-order edges
///   DOCS_ASSERT_CAPABILITY     — runtime-checked "I hold this"
///   DOCS_RETURN_CAPABILITY(mu) — accessor returning a guarded reference
///   DOCS_NO_THREAD_SAFETY_ANALYSIS — opt a function out (rare; justify it)

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define DOCS_THREAD_ANNOTATION_(x) __attribute__((x))
#endif
#endif
#ifndef DOCS_THREAD_ANNOTATION_
#define DOCS_THREAD_ANNOTATION_(x)  // no-op: gcc / pre-TSA clang
#endif

#define DOCS_CAPABILITY(x) DOCS_THREAD_ANNOTATION_(capability(x))
#define DOCS_SCOPED_CAPABILITY DOCS_THREAD_ANNOTATION_(scoped_lockable)

#define DOCS_GUARDED_BY(x) DOCS_THREAD_ANNOTATION_(guarded_by(x))
#define DOCS_PT_GUARDED_BY(x) DOCS_THREAD_ANNOTATION_(pt_guarded_by(x))

#define DOCS_ACQUIRED_BEFORE(...) \
  DOCS_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))
#define DOCS_ACQUIRED_AFTER(...) \
  DOCS_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))

#define DOCS_REQUIRES(...) \
  DOCS_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
#define DOCS_REQUIRES_SHARED(...) \
  DOCS_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))

#define DOCS_ACQUIRE(...) \
  DOCS_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define DOCS_ACQUIRE_SHARED(...) \
  DOCS_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))
#define DOCS_RELEASE(...) \
  DOCS_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define DOCS_RELEASE_SHARED(...) \
  DOCS_THREAD_ANNOTATION_(release_shared_capability(__VA_ARGS__))
#define DOCS_RELEASE_GENERIC(...) \
  DOCS_THREAD_ANNOTATION_(release_generic_capability(__VA_ARGS__))

#define DOCS_TRY_ACQUIRE(...) \
  DOCS_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))
#define DOCS_TRY_ACQUIRE_SHARED(...) \
  DOCS_THREAD_ANNOTATION_(try_acquire_shared_capability(__VA_ARGS__))

#define DOCS_EXCLUDES(...) \
  DOCS_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

#define DOCS_ASSERT_CAPABILITY(x) \
  DOCS_THREAD_ANNOTATION_(assert_capability(x))
#define DOCS_ASSERT_SHARED_CAPABILITY(x) \
  DOCS_THREAD_ANNOTATION_(assert_shared_capability(x))

#define DOCS_RETURN_CAPABILITY(x) DOCS_THREAD_ANNOTATION_(lock_returned(x))

#define DOCS_NO_THREAD_SAFETY_ANALYSIS \
  DOCS_THREAD_ANNOTATION_(no_thread_safety_analysis)

#endif  // DOCS_COMMON_THREAD_ANNOTATIONS_H_
