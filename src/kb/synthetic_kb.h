#ifndef DOCS_KB_SYNTHETIC_KB_H_
#define DOCS_KB_SYNTHETIC_KB_H_

#include <cstdint>
#include <string>
#include <vector>

#include "kb/knowledge_base.h"

namespace docs::kb {

/// Named pools of real-world entities seeded into the synthetic KB. The
/// dataset generators draw from the same pools so that task text mentions
/// resolvable entities (the paper's datasets are built over NBA players,
/// foods, cars, countries, films, mountains and renowned persons).
struct EntityPools {
  std::vector<std::string> nba_players;
  std::vector<std::string> nba_teams;
  std::vector<std::string> foods;
  std::vector<std::string> cars;
  std::vector<std::string> countries;
  std::vector<std::string> films;
  std::vector<std::string> mountains;
  std::vector<std::string> actors;
  std::vector<std::string> musicians;
  std::vector<std::string> business_people;
  std::vector<std::string> politicians;
  std::vector<std::string> scientists;
  /// Large generated long-tail person pools per sphere (entertainers,
  /// executives, athletes, politicians). Real KBs hold millions of barely
  /// repeated person names; these pools give the SFV-style datasets that
  /// sparsity, which is what defeats co-occurrence-based topic models while
  /// leaving the KB lookup trivial.
  std::vector<std::string> minor_entertainers;
  std::vector<std::string> minor_executives;
  std::vector<std::string> minor_athletes;
  std::vector<std::string> minor_politicians;
};

/// Tuning knobs for the synthetic Freebase/Wikipedia stand-in.
struct SyntheticKbOptions {
  uint64_t seed = 42;
  /// Generic concepts added per domain to thicken the KB; they also serve as
  /// low-prior distractor candidates for ambiguous aliases.
  size_t filler_concepts_per_domain = 60;
  /// Long-tail persons generated per sphere (see EntityPools).
  size_t minor_persons_per_sphere = 250;
  /// Number of candidate concepts registered per alias (the Wikifier top-20
  /// candidate list of the paper). The true concept(s) come first; the rest
  /// are random distractors with low context affinity.
  size_t ambiguity_fanout = 20;
};

/// The built KB plus the pools and per-domain keyword vocabularies used to
/// generate it.
struct SyntheticKb {
  KnowledgeBase knowledge_base;
  EntityPools pools;
  /// keyword vocabulary per domain (index-aligned with the taxonomy).
  std::vector<std::vector<std::string>> domain_keywords;
};

/// Returns the curated per-domain keyword vocabulary for the 26-domain
/// taxonomy (used by the KB builder, the dataset text generators, and the
/// topic-model corpora).
std::vector<std::vector<std::string>> YahooDomainKeywords(
    const DomainTaxonomy& taxonomy);

/// Builds the default synthetic knowledge base over YahooAnswers26():
///  * curated multi-domain concepts with ambiguous aliases (the paper's
///    "Michael Jordan" x3 and "NBA" x2 examples are present verbatim);
///  * per-domain entity pools (players, foods, cars, countries, films,
///    mountains, persons) with one concept per entity;
///  * filler concepts per domain;
///  * each alias expanded to `ambiguity_fanout` candidates.
SyntheticKb BuildSyntheticKb(const SyntheticKbOptions& options = {});

}  // namespace docs::kb

#endif  // DOCS_KB_SYNTHETIC_KB_H_
