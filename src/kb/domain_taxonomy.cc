#include "kb/domain_taxonomy.h"

#include <algorithm>

namespace docs::kb {
namespace {

// The 26 top-level Yahoo! Answers categories (short identifiers). The paper
// maps its dataset domains onto: Sports, Food, Cars, Travel, Entertain,
// Science, Business and Politics.
const char* const kYahooDomains[] = {
    "Arts",        "Beauty",    "Business",   "Cars",      "Computers",
    "Electronics", "Dining",    "Education",  "Entertain", "Environment",
    "Family",      "Food",      "Games",      "Health",    "Home",
    "Local",       "News",      "Pets",       "Politics",  "Parenting",
    "Science",     "SocialSci", "Society",    "Sports",    "Travel",
    "Products",
};

}  // namespace

DomainTaxonomy DomainTaxonomy::YahooAnswers26() {
  std::vector<std::string> names(std::begin(kYahooDomains),
                                 std::end(kYahooDomains));
  return FromNames(std::move(names));
}

DomainTaxonomy DomainTaxonomy::FromNames(std::vector<std::string> names) {
  DomainTaxonomy taxonomy;
  taxonomy.names_ = std::move(names);
  return taxonomy;
}

StatusOr<size_t> DomainTaxonomy::IndexOf(std::string_view name) const {
  for (size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) return i;
  }
  return NotFoundError("unknown domain: " + std::string(name));
}

Status DomainTaxonomy::AddCategory(std::string category, size_t domain_index) {
  if (domain_index >= names_.size()) {
    return InvalidArgumentError("domain index out of range");
  }
  auto it = std::lower_bound(categories_.begin(), categories_.end(), category);
  if (it != categories_.end() && *it == category) {
    return AlreadyExistsError("category already registered: " + category);
  }
  size_t pos = static_cast<size_t>(it - categories_.begin());
  categories_.insert(it, std::move(category));
  category_domain_.insert(category_domain_.begin() + pos, domain_index);
  return OkStatus();
}

StatusOr<size_t> DomainTaxonomy::DomainOfCategory(
    std::string_view category) const {
  auto it = std::lower_bound(categories_.begin(), categories_.end(), category);
  if (it == categories_.end() || *it != category) {
    return NotFoundError("unknown category: " + std::string(category));
  }
  return category_domain_[static_cast<size_t>(it - categories_.begin())];
}

std::vector<std::string> DomainTaxonomy::Categories() const {
  return categories_;
}

CanonicalDomains CanonicalDomains::Resolve(const DomainTaxonomy& taxonomy) {
  auto idx = [&](std::string_view name) {
    auto result = taxonomy.IndexOf(name);
    return result.ok() ? result.value() : 0;
  };
  CanonicalDomains d;
  d.sports = idx("Sports");
  d.food = idx("Food");
  d.cars = idx("Cars");
  d.travel = idx("Travel");
  d.entertain = idx("Entertain");
  d.science = idx("Science");
  d.business = idx("Business");
  d.politics = idx("Politics");
  return d;
}

}  // namespace docs::kb
