#include "kb/synthetic_kb.h"

#include <algorithm>
#include <cctype>
#include <initializer_list>
#include <iterator>
#include <unordered_set>

#include "common/logging.h"
#include "common/rng.h"
#include "common/string_utils.h"

namespace docs::kb {
namespace {

// ---------------------------------------------------------------------------
// Seed entity pools. The datasets of the paper are built over these kinds of
// entities; ambiguous surface forms (Michael Jordan, NBA, Jordan, Curry,
// Turkey, Rocky) are introduced deliberately so that DVE's disambiguation
// machinery is exercised exactly as in Table 2.
// ---------------------------------------------------------------------------

const char* const kNbaPlayers[] = {
    "Michael Jordan",    "Kobe Bryant",      "Stephen Curry",
    "LeBron James",      "Kevin Durant",     "Tim Duncan",
    "Shaquille Oneal",   "Magic Johnson",    "Larry Bird",
    "Kareem Abdul Jabbar", "Dirk Nowitzki",  "Dwyane Wade",
    "Allen Iverson",     "Russell Westbrook", "James Harden",
    "Chris Paul",        "Kevin Garnett",    "Paul Pierce",
    "Ray Allen",         "Vince Carter",     "Tracy McGrady",
    "Yao Ming",          "Tony Parker",      "Manu Ginobili",
    "Klay Thompson",     "Draymond Green",   "Kyrie Irving",
    "Anthony Davis",     "Damian Lillard",   "Carmelo Anthony",
    "Scottie Pippen",    "Dennis Rodman",    "Charles Barkley",
    "Karl Malone",       "John Stockton",    "Patrick Ewing",
    "Hakeem Olajuwon",   "David Robinson",   "Jason Kidd",
    "Steve Nash",
};

const char* const kNbaTeams[] = {
    "Golden State Warriors", "Chicago Bulls",        "Los Angeles Lakers",
    "Boston Celtics",        "San Antonio Spurs",    "Miami Heat",
    "Cleveland Cavaliers",   "Houston Rockets",      "Oklahoma City Thunder",
    "Dallas Mavericks",      "New York Knicks",      "Phoenix Suns",
    "Toronto Raptors",       "Utah Jazz",            "Portland Trail Blazers",
    "Detroit Pistons",
};

const char* const kFoods[] = {
    "Chocolate",     "Honey",        "Pizza",        "Sushi",
    "Pasta",         "Cheese",       "Butter",       "Yogurt",
    "Avocado",       "Banana",       "Apple Pie",    "Peanut Butter",
    "Olive Oil",     "Brown Rice",   "Oatmeal",      "Broccoli",
    "Spinach",       "Salmon",       "Tofu",         "Almonds",
    "Walnuts",       "Quinoa",       "Lentils",      "Chickpeas",
    "Bacon",         "Sausage",      "Ice Cream",    "Donut",
    "Bagel",         "Croissant",    "Burrito",      "Taco",
    "Ramen",         "Curry",        "Hummus",       "Granola",
    "Popcorn",       "Pretzel",      "Waffle",       "Pancake",
    "Chili",         "Turkey",
};

const char* const kCars[] = {
    "Toyota Corolla",      "Honda Civic",        "Ford Mustang",
    "Chevrolet Camaro",    "Tesla Model S",      "BMW 3 Series",
    "Audi A4",             "Mercedes C Class",   "Volkswagen Golf",
    "Subaru Outback",      "Mazda Miata",        "Nissan Altima",
    "Hyundai Elantra",     "Kia Sorento",        "Jeep Wrangler",
    "Dodge Charger",       "Porsche 911",        "Ferrari 488",
    "Lamborghini Aventador", "Toyota Prius",     "Honda Accord",
    "Ford F150",           "Chevrolet Silverado", "Ram 1500",
    "Volvo XC90",          "Lexus RX",           "Acura TLX",
    "Infiniti Q50",        "Jaguar F Type",      "Land Rover Defender",
    "Mini Cooper",         "Fiat 500",
};

const char* const kCountries[] = {
    "United States", "Canada",       "Mexico",       "Brazil",
    "Argentina",     "United Kingdom", "France",     "Germany",
    "Italy",         "Spain",        "Portugal",     "Netherlands",
    "Belgium",       "Switzerland",  "Austria",      "Sweden",
    "Norway",        "Denmark",      "Finland",      "Poland",
    "Russia",        "Turkey",       "Egypt",        "South Africa",
    "Nigeria",       "Kenya",        "China",        "Japan",
    "South Korea",   "India",        "Thailand",     "Vietnam",
    "Indonesia",     "Australia",    "New Zealand",  "Greece",
    "Ireland",       "Iceland",      "Chile",        "Peru",
    "Jordan",
};

const char* const kFilms[] = {
    "Titanic",            "Inception",        "The Godfather",
    "Pulp Fiction",       "Forrest Gump",     "The Matrix",
    "Gladiator",          "Avatar",           "Jurassic Park",
    "Star Wars",          "The Dark Knight",  "Fight Club",
    "Goodfellas",         "Casablanca",       "Space Jam",
    "The Revenant",       "Interstellar",     "The Shawshank Redemption",
    "Schindlers List",    "The Lion King",    "Toy Story",
    "Finding Nemo",       "Back to the Future", "Terminator 2",
    "Alien",              "Jaws",             "Rocky",
    "The Departed",       "Braveheart",       "La La Land",
    "Mad Max Fury Road",  "The Silence of the Lambs",
};

const char* const kMountains[] = {
    "Mount Everest",     "K2",              "Kangchenjunga",
    "Lhotse",            "Makalu",          "Cho Oyu",
    "Dhaulagiri",        "Manaslu",         "Nanga Parbat",
    "Annapurna",         "Mont Blanc",      "Matterhorn",
    "Denali",            "Mount Kilimanjaro", "Mount Fuji",
    "Mount Rainier",     "Mount Whitney",   "Aconcagua",
    "Mount Elbrus",      "Vinson Massif",   "Table Mountain",
    "Rocky Mountains",   "Mount Olympus",   "Ben Nevis",
};

const char* const kActors[] = {
    "Leonardo DiCaprio", "Michael B Jordan",  "Tom Hanks",
    "Meryl Streep",      "Brad Pitt",         "Angelina Jolie",
    "Denzel Washington", "Morgan Freeman",    "Scarlett Johansson",
    "Robert De Niro",    "Al Pacino",         "Natalie Portman",
    "Jennifer Lawrence", "Will Smith",        "Johnny Depp",
    "Kate Winslet",      "Matt Damon",        "Christian Bale",
    "Anne Hathaway",     "Samuel L Jackson",
};

const char* const kMusicians[] = {
    "Taylor Swift",  "Beyonce",       "Michael Jackson", "Madonna",
    "Elvis Presley", "The Beatles",   "Bob Dylan",       "Adele",
    "Eminem",        "Kanye West",    "Lady Gaga",       "Bruno Mars",
    "Rihanna",       "Drake",         "Coldplay",        "U2",
};

const char* const kBusinessPeople[] = {
    "Bill Gates",      "Steve Jobs",    "Elon Musk",     "Warren Buffett",
    "Jeff Bezos",      "Mark Zuckerberg", "Larry Page",  "Sergey Brin",
    "Jack Ma",         "Richard Branson", "Tim Cook",    "Larry Ellison",
};

const char* const kPoliticians[] = {
    "Barack Obama",      "George Washington", "Abraham Lincoln",
    "Winston Churchill", "Angela Merkel",     "Nelson Mandela",
    "John F Kennedy",    "Franklin Roosevelt", "Theodore Roosevelt",
    "Margaret Thatcher", "Mahatma Gandhi",    "Vladimir Putin",
};

const char* const kScientists[] = {
    "Albert Einstein",  "Isaac Newton",     "Marie Curie",
    "Charles Darwin",   "Nikola Tesla",     "Stephen Hawking",
    "Alan Turing",      "Michael I Jordan", "Ada Lovelace",
    "Galileo Galilei",  "Richard Feynman",  "Rosalind Franklin",
};

template <size_t N>
std::vector<std::string> ToVector(const char* const (&items)[N]) {
  return std::vector<std::string>(std::begin(items), std::end(items));
}

struct KeywordSeed {
  const char* domain;
  const char* words;
};

// Per-domain keyword vocabularies: rich for the eight domains the paper's
// datasets touch, compact for the rest of the 26.
const KeywordSeed kKeywordSeeds[] = {
    {"Sports",
     "basketball nba team teams player players championship championships season "
     "game games score points league coach playoffs dunk court finals mvp "
     "draft rebound assist guard forward center titles win wins height "
     "jersey play"},
    {"Food",
     "food foods calories recipe recipes dish cuisine flavor protein sugar "
     "dessert breakfast dinner meal spicy sweet baked fried sauce ingredient "
     "ingredients vitamin snack drink originate taste kitchen contains"},
    {"Cars",
     "car cars engine engines horsepower sedan suv mpg fuel torque vehicle "
     "vehicles wheel transmission brake mileage speed motor drive hybrid "
     "electric acceleration model models manufacturer dealership faster "
     "costs economy"},
    {"Travel",
     "country countries capital capitals city cities population border "
     "currency travel visa continent flag tourism language nation region "
     "coast passport airline island larger"},
    {"Entertain",
     "film films movie movies actor actors actress director oscar hollywood "
     "album albums song songs music singer band episode tv show starred star "
     "premiere premiered box office award cinema soundtrack celebrity "
     "released lead"},
    {"Science",
     "mountain mountains peak peaks elevation summit physics theory theories "
     "research professor experiment species planet chemistry biology climate "
     "altitude range meters discovery university science climber climbed "
     "glacier taller"},
    {"Business",
     "company companies ceo ceos billionaire stock market revenue founder "
     "founders founded startup investment profit shares fortune wealth brand "
     "corporation owns acquisition worth net richer"},
    {"Politics",
     "president presidents election elections government senate congress "
     "policy minister parliament vote campaign law treaty diplomat party "
     "parties state union soviet elected"},
    {"Arts", "painting museum poetry sculpture gallery novel author literature history"},
    {"Beauty", "makeup skincare hair fashion style perfume cosmetics salon"},
    {"Computers", "software internet programming computer code website browser network machine learning"},
    {"Electronics", "phone camera laptop gadget battery screen device audio speaker"},
    {"Dining", "restaurant menu chef waiter reservation buffet bistro tip"},
    {"Education", "school university exam homework degree teacher student college"},
    {"Environment", "pollution recycling energy wildlife conservation forest emission"},
    {"Family", "marriage wedding relationship friendship advice anniversary"},
    {"Games", "videogame console puzzle chess poker arcade quest multiplayer"},
    {"Health", "doctor medicine symptom diet exercise therapy disease nutrition"},
    {"Home", "furniture garden kitchen renovation decor plumbing lawn paint"},
    {"Local", "shop store service neighborhood mall plaza errand"},
    {"News", "headline breaking report journalist media press coverage"},
    {"Pets", "dog cat puppy kitten veterinarian breed aquarium leash"},
    {"Parenting", "baby toddler pregnancy infant nursery diaper stroller"},
    {"SocialSci", "psychology sociology economics anthropology culture behavior survey"},
    {"Society", "religion tradition etiquette community holiday custom association bar law"},
    {"Products", "mail messenger search account login email inbox settings"},
};

// Syllables for pseudo-word filler concept names.
const char* const kSyllables[] = {"vel", "tor", "zan", "mir", "quo", "lex",
                                  "dra", "fen", "gol", "hax", "jin", "kru",
                                  "lom", "nep", "oru", "pix", "rud", "syl",
                                  "tam", "urb", "wex", "yol", "zeb", "cor"};

std::string MakePseudoWord(Rng& rng) {
  size_t syllables = 2 + rng.UniformInt(2);
  std::string word;
  for (size_t i = 0; i < syllables; ++i) {
    word += kSyllables[rng.UniformInt(std::size(kSyllables))];
  }
  return word;
}

}  // namespace

std::vector<std::vector<std::string>> YahooDomainKeywords(
    const DomainTaxonomy& taxonomy) {
  std::vector<std::vector<std::string>> keywords(taxonomy.size());
  for (const auto& seed : kKeywordSeeds) {
    auto index = taxonomy.IndexOf(seed.domain);
    if (!index.ok()) continue;
    keywords[index.value()] = Split(seed.words, " ");
  }
  return keywords;
}

SyntheticKb BuildSyntheticKb(const SyntheticKbOptions& options) {
  Rng rng(options.seed);
  DomainTaxonomy taxonomy = DomainTaxonomy::YahooAnswers26();
  CanonicalDomains canon = CanonicalDomains::Resolve(taxonomy);

  // Freebase-style category paths mapped onto the Yahoo domains.
  struct CategorySeed {
    const char* path;
    size_t domain;
  };
  const CategorySeed category_seeds[] = {
      {"/sports/basketball", canon.sports},
      {"/sports/sports_team", canon.sports},
      {"/food/dish", canon.food},
      {"/food/ingredient", canon.food},
      {"/automotive/model", canon.cars},
      {"/location/country", canon.travel},
      {"/film/film", canon.entertain},
      {"/film/actor", canon.entertain},
      {"/music/artist", canon.entertain},
      {"/geography/mountain", canon.science},
      {"/education/academic", canon.science},
      {"/business/board_member", canon.business},
      {"/government/politician", canon.politics},
  };
  for (const auto& seed : category_seeds) {
    Status status = taxonomy.AddCategory(seed.path, seed.domain);
    if (!status.ok()) {
      DOCS_LOG(Warning) << "category seed: " << status.ToString();
    }
  }

  SyntheticKb result{KnowledgeBase(std::move(taxonomy)), EntityPools{},
                     std::vector<std::vector<std::string>>{}};
  KnowledgeBase& kb = result.knowledge_base;
  result.domain_keywords = YahooDomainKeywords(kb.taxonomy());
  const auto& keywords = result.domain_keywords;

  EntityPools& pools = result.pools;
  pools.nba_players = ToVector(kNbaPlayers);
  pools.nba_teams = ToVector(kNbaTeams);
  pools.foods = ToVector(kFoods);
  pools.cars = ToVector(kCars);
  pools.countries = ToVector(kCountries);
  pools.films = ToVector(kFilms);
  pools.mountains = ToVector(kMountains);
  pools.actors = ToVector(kActors);
  pools.musicians = ToVector(kMusicians);
  pools.business_people = ToVector(kBusinessPeople);
  pools.politicians = ToVector(kPoliticians);
  pools.scientists = ToVector(kScientists);

  std::vector<std::string> all_aliases;

  // Adds one concept for `title` related to the given domains, registers the
  // title as alias, and returns the id.
  auto add_entity = [&](const std::string& title,
                        std::initializer_list<size_t> domains,
                        double popularity) {
    Concept new_concept;
    new_concept.title = title;
    new_concept.domain_indicator.assign(kb.num_domains(), 0);
    std::unordered_set<std::string> kw;
    for (size_t d : domains) {
      new_concept.domain_indicator[d] = 1;
      // The concept carries its domains' full keyword vocabulary, so context
      // overlap reliably separates e.g. the basketball player from the
      // computer scientist.
      for (const auto& w : keywords[d]) kw.insert(w);
    }
    for (const auto& token : TokenizeWords(title)) kw.insert(token);
    new_concept.context_keywords.assign(kw.begin(), kw.end());
    std::sort(new_concept.context_keywords.begin(), new_concept.context_keywords.end());
    new_concept.popularity = popularity;
    auto id = kb.AddConcept(std::move(new_concept));
    if (!id.ok()) {
      DOCS_LOG(Error) << "AddConcept failed: " << id.status().ToString();
      return kInvalidConcept;
    }
    Status alias_status = kb.AddAlias(title, id.value());
    if (!alias_status.ok()) {
      DOCS_LOG(Error) << "AddAlias failed: " << alias_status.ToString();
    }
    all_aliases.push_back(title);
    return id.value();
  };

  // --- Curated pools -------------------------------------------------------
  for (const auto& name : pools.nba_players) {
    if (name == "Michael Jordan") {
      // The paper's Table 2 case: the player also starred in Space Jam, so
      // his indicator covers Sports and Entertain.
      add_entity(name, {canon.sports, canon.entertain}, 0.95);
    } else {
      add_entity(name, {canon.sports},
                 rng.UniformDoubleRange(0.6, 1.0));
    }
  }
  for (const auto& name : pools.nba_teams) {
    add_entity(name, {canon.sports}, rng.UniformDoubleRange(0.6, 1.0));
  }
  for (const auto& name : pools.foods) {
    add_entity(name, {canon.food}, rng.UniformDoubleRange(0.5, 0.9));
  }
  for (const auto& name : pools.cars) {
    add_entity(name, {canon.cars}, rng.UniformDoubleRange(0.5, 1.0));
  }
  for (const auto& name : pools.countries) {
    add_entity(name, {canon.travel}, rng.UniformDoubleRange(0.6, 1.0));
  }
  for (const auto& name : pools.films) {
    add_entity(name, {canon.entertain}, rng.UniformDoubleRange(0.5, 1.0));
  }
  for (const auto& name : pools.mountains) {
    add_entity(name, {canon.science}, rng.UniformDoubleRange(0.5, 1.0));
  }
  for (const auto& name : pools.actors) {
    add_entity(name, {canon.entertain}, rng.UniformDoubleRange(0.5, 1.0));
  }
  for (const auto& name : pools.musicians) {
    add_entity(name, {canon.entertain}, rng.UniformDoubleRange(0.5, 1.0));
  }
  for (const auto& name : pools.business_people) {
    add_entity(name, {canon.business}, rng.UniformDoubleRange(0.6, 1.0));
  }
  for (const auto& name : pools.politicians) {
    add_entity(name, {canon.politics}, rng.UniformDoubleRange(0.6, 1.0));
  }
  for (const auto& name : pools.scientists) {
    add_entity(name, {canon.science}, rng.UniformDoubleRange(0.6, 1.0));
  }

  // --- Deliberate ambiguity (the paper's running examples) -----------------
  // "Michael Jordan" -> the player (added above), the computer scientist,
  // and the actor Michael B. Jordan.
  ConceptId mij = kInvalidConcept;  // Michael I. Jordan (already added).
  ConceptId mbj = kInvalidConcept;  // Michael B. Jordan (already added).
  ConceptId player_mj = kInvalidConcept;
  ConceptId country_jordan = kInvalidConcept;
  for (ConceptId id = 0; id < kb.num_concepts(); ++id) {
    const std::string& title = kb.GetConcept(id).title;
    if (title == "Michael I Jordan") mij = id;
    if (title == "Michael B Jordan") mbj = id;
    if (title == "Michael Jordan") player_mj = id;
    if (title == "Jordan") country_jordan = id;
  }
  auto alias_or_warn = [&](std::string_view alias, ConceptId id) {
    if (id == kInvalidConcept) return;
    Status status = kb.AddAlias(alias, id);
    if (!status.ok()) DOCS_LOG(Warning) << status.ToString();
  };
  alias_or_warn("Michael Jordan", mij);
  alias_or_warn("Michael Jordan", mbj);
  alias_or_warn("Jordan", player_mj);

  // "NBA" -> National Basketball Association vs. National Bar Association.
  ConceptId nba_sports =
      add_entity("National Basketball Association", {canon.sports}, 0.95);
  size_t society = 0;
  {
    auto society_index = kb.taxonomy().IndexOf("Society");
    if (society_index.ok()) society = society_index.value();
  }
  ConceptId nba_bar = add_entity("National Bar Association", {society}, 0.3);
  alias_or_warn("NBA", nba_sports);
  alias_or_warn("NBA", nba_bar);
  (void)country_jordan;

  // --- Long-tail persons per sphere -----------------------------------------
  // Unique pseudo-named persons; each is a KB concept in its sphere's domain.
  {
    struct Sphere {
      std::vector<std::string>* pool;
      size_t domain;
      const char* suffix;
    };
    size_t politics_domain = canon.politics;
    Sphere spheres[] = {
        {&pools.minor_entertainers, canon.entertain, "a"},
        {&pools.minor_executives, canon.business, "b"},
        {&pools.minor_athletes, canon.sports, "c"},
        {&pools.minor_politicians, politics_domain, "d"},
    };
    std::unordered_set<std::string> used_names;
    for (auto& sphere : spheres) {
      while (sphere.pool->size() < options.minor_persons_per_sphere) {
        std::string first = MakePseudoWord(rng);
        std::string last = MakePseudoWord(rng);
        first[0] = static_cast<char>(
            std::toupper(static_cast<unsigned char>(first[0])));
        last[0] = static_cast<char>(
            std::toupper(static_cast<unsigned char>(last[0])));
        std::string name = first + " " + last;
        if (!used_names.insert(name).second) continue;
        add_entity(name, {sphere.domain}, rng.UniformDoubleRange(0.4, 0.8));
        sphere.pool->push_back(std::move(name));
      }
    }
  }

  // --- Filler concepts ------------------------------------------------------
  for (size_t d = 0; d < kb.num_domains(); ++d) {
    for (size_t i = 0; i < options.filler_concepts_per_domain; ++i) {
      std::string word = MakePseudoWord(rng);
      word[0] = static_cast<char>(std::toupper(static_cast<unsigned char>(word[0])));
      std::string title = word + " " + kb.taxonomy().name(d);
      add_entity(title, {d}, rng.UniformDoubleRange(0.1, 0.6));
    }
  }

  // --- Alias fanout ---------------------------------------------------------
  // Wikifier links each detected entity to a top-20 candidate list; we expand
  // every alias to `ambiguity_fanout` candidates by appending random
  // low-affinity distractors.
  if (options.ambiguity_fanout > 1) {
    for (const auto& alias : all_aliases) {
      size_t have = kb.LookupAlias(alias).size();
      size_t want = std::min<size_t>(options.ambiguity_fanout,
                                     kb.num_concepts());
      size_t guard = 0;
      while (have < want && guard < 10 * want) {
        ConceptId candidate =
            static_cast<ConceptId>(rng.UniformInt(kb.num_concepts()));
        ++guard;
        // Distractor senses carry a low link-frequency prior; re-adding an
        // existing pair is idempotent, so re-check the count each attempt.
        Status status = kb.AddAlias(alias, candidate, /*prior=*/0.03);
        if (!status.ok()) continue;
        have = kb.LookupAlias(alias).size();
      }
    }
  }

  return result;
}

}  // namespace docs::kb
