#include "kb/knowledge_base.h"

#include <algorithm>

#include "common/string_utils.h"

namespace docs::kb {
namespace {

// Aliases are matched on word sequences, so the canonical key is the
// lowercase token sequence joined by single spaces ("Shaquille O'Neal" and
// "shaquille o neal" collide on purpose).
std::string NormalizeAlias(std::string_view alias) {
  return Join(TokenizeWords(alias), " ");
}

}  // namespace

KnowledgeBase::KnowledgeBase(DomainTaxonomy taxonomy)
    : taxonomy_(std::move(taxonomy)) {}

StatusOr<ConceptId> KnowledgeBase::AddConcept(Concept concept_data) {
  if (concept_data.domain_indicator.size() != taxonomy_.size()) {
    return InvalidArgumentError("indicator vector size != number of domains");
  }
  if (concept_data.popularity <= 0.0) {
    return InvalidArgumentError("popularity must be positive");
  }
  ConceptId id = static_cast<ConceptId>(concepts_.size());
  concept_data.id = id;
  concepts_.push_back(std::move(concept_data));
  return id;
}

Status KnowledgeBase::AddAlias(std::string_view alias, ConceptId id,
                               double prior) {
  if (id >= concepts_.size()) {
    return InvalidArgumentError("alias refers to unknown concept");
  }
  if (prior <= 0.0) return InvalidArgumentError("prior must be positive");
  std::string key = NormalizeAlias(alias);
  if (key.empty()) return InvalidArgumentError("empty alias");
  auto& entries = alias_index_[key];
  for (AliasEntry& existing : entries) {
    if (existing.id == id) {  // Idempotent; keep the stronger prior.
      existing.prior = std::max(existing.prior, prior);
      return OkStatus();
    }
  }
  entries.push_back({id, prior});
  size_t words = Split(key, " ").size();
  max_alias_words_ = std::max(max_alias_words_, words);
  return OkStatus();
}

const std::vector<KnowledgeBase::AliasEntry>& KnowledgeBase::LookupAlias(
    std::string_view alias) const {
  auto it = alias_index_.find(NormalizeAlias(alias));
  if (it == alias_index_.end()) return empty_;
  return it->second;
}

bool KnowledgeBase::HasAlias(std::string_view alias) const {
  return alias_index_.count(NormalizeAlias(alias)) > 0;
}

void KnowledgeBase::ForEachAlias(
    const std::function<void(const std::string& alias,
                             const AliasEntry& entry)>& visit) const {
  for (const auto& [alias, entries] : alias_index_) {
    for (const AliasEntry& entry : entries) visit(alias, entry);
  }
}

std::vector<uint8_t> KnowledgeBase::IndicatorFromCategories(
    const std::vector<std::string>& categories) const {
  std::vector<uint8_t> indicator(taxonomy_.size(), 0);
  for (const auto& category : categories) {
    auto domain = taxonomy_.DomainOfCategory(category);
    if (domain.ok()) indicator[domain.value()] = 1;
  }
  return indicator;
}

}  // namespace docs::kb
