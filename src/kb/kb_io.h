#ifndef DOCS_KB_KB_IO_H_
#define DOCS_KB_KB_IO_H_

#include <string>

#include "common/status.h"
#include "kb/knowledge_base.h"

namespace docs::kb {

/// Serializes a knowledge base to a line-oriented text dump:
///
///   docskb 1
///   domain <name>
///   category <domain_index> <path>
///   concept <popularity> <indicator-bitstring> <keyword,keyword,...> <title>
///   alias <concept_id> <prior> <alias text>
///
/// Concepts appear in id order so ids are implicit; a downstream user can
/// maintain their own dump (e.g. exported from a real KB) and load it in
/// place of the synthetic builder.
[[nodiscard]] Status SaveKnowledgeBase(const KnowledgeBase& kb, const std::string& path);

/// Loads a dump produced by SaveKnowledgeBase (or hand-written in the same
/// format). Unknown directives and malformed lines fail with DataLoss,
/// including the offending line number.
[[nodiscard]] StatusOr<KnowledgeBase> LoadKnowledgeBase(const std::string& path);

}  // namespace docs::kb

#endif  // DOCS_KB_KB_IO_H_
