#ifndef DOCS_KB_DOMAIN_TAXONOMY_H_
#define DOCS_KB_DOMAIN_TAXONOMY_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace docs::kb {

/// The explicit domain set D of Definition 1. DOCS constructs D from the 26
/// top-level Yahoo! Answers categories and maps each to the corresponding
/// Freebase domain(s); this class owns that list plus the category->domain
/// mapping used when computing concept indicator vectors.
class DomainTaxonomy {
 public:
  /// Builds the default 26-domain taxonomy used throughout the paper.
  static DomainTaxonomy YahooAnswers26();

  /// Builds a reduced taxonomy with the given domain names (used by
  /// simulations that set m explicitly, e.g. m = 20 in Fig. 4(e)).
  static DomainTaxonomy FromNames(std::vector<std::string> names);

  /// Number of domains m = |D|.
  size_t size() const { return names_.size(); }

  /// Name of domain k (0-based).
  const std::string& name(size_t k) const { return names_[k]; }
  const std::vector<std::string>& names() const { return names_; }

  /// Index of a domain by exact name; NotFound if absent.
  [[nodiscard]] StatusOr<size_t> IndexOf(std::string_view name) const;

  /// Registers a Freebase-style category path (e.g. "/sports/basketball")
  /// as belonging to domain `domain_index`. Categories drive indicator
  /// vectors: a concept tagged with a category is related to its domain.
  [[nodiscard]] Status AddCategory(std::string category, size_t domain_index);

  /// Domain index for a category path; NotFound if the category is unknown.
  [[nodiscard]] StatusOr<size_t> DomainOfCategory(std::string_view category) const;

  /// All registered category paths (sorted lexicographically).
  std::vector<std::string> Categories() const;

 private:
  std::vector<std::string> names_;
  // Parallel arrays kept sorted by category for binary search.
  std::vector<std::string> categories_;
  std::vector<size_t> category_domain_;
};

/// Canonical indices of the domains that the paper's datasets map onto,
/// resolved against YahooAnswers26(). Kept in one place so datasets, benches
/// and tests agree.
struct CanonicalDomains {
  size_t sports;
  size_t food;
  size_t cars;
  size_t travel;
  size_t entertain;
  size_t science;
  size_t business;
  size_t politics;

  static CanonicalDomains Resolve(const DomainTaxonomy& taxonomy);
};

}  // namespace docs::kb

#endif  // DOCS_KB_DOMAIN_TAXONOMY_H_
