#ifndef DOCS_KB_KNOWLEDGE_BASE_H_
#define DOCS_KB_KNOWLEDGE_BASE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "kb/domain_taxonomy.h"

namespace docs::kb {

using ConceptId = uint32_t;
inline constexpr ConceptId kInvalidConcept = static_cast<ConceptId>(-1);

/// A concept (Wikipedia page / Freebase topic analogue). Carries everything
/// DVE's step 1 reads: the per-domain indicator vector h, a popularity prior
/// (the "frequency of the linking" feature of Wikifier), and context
/// keywords used for disambiguation against a task's text.
struct Concept {
  ConceptId id = kInvalidConcept;
  std::string title;
  /// h in {0,1}^m: domain_indicator[k] == 1 iff the concept is related to
  /// domain d_k. A concept may belong to several domains (e.g. the basketball
  /// player Michael Jordan is related to Sports and to Entertain via the
  /// film Space Jam), or to none (Michael I. Jordan, the computer scientist,
  /// relative to a taxonomy without a matching domain).
  std::vector<uint8_t> domain_indicator;
  /// Link-frequency prior in (0, 1]; larger values make the concept a more
  /// likely referent for an ambiguous alias, all else equal.
  double popularity = 1.0;
  /// Bag of lowercase context words associated with the concept.
  std::vector<std::string> context_keywords;
};

/// An in-memory knowledge base: concepts plus an alias (surface-form) index.
/// Stands in for Freebase/Wikipedia in the paper's architecture; the entity
/// linker resolves task mentions against the alias index and the DVE module
/// reads indicator vectors from the referenced concepts.
class KnowledgeBase {
 public:
  /// Creates a KB over the given taxonomy (copied).
  explicit KnowledgeBase(DomainTaxonomy taxonomy);

  const DomainTaxonomy& taxonomy() const { return taxonomy_; }
  size_t num_domains() const { return taxonomy_.size(); }
  size_t num_concepts() const { return concepts_.size(); }

  /// Adds a concept; assigns and returns its id. The indicator vector is
  /// validated against the taxonomy size; popularity must be positive.
  [[nodiscard]] StatusOr<ConceptId> AddConcept(Concept concept_data);

  /// One candidate sense of a surface form, with its link-frequency prior
  /// (how often this alias refers to this concept; Wikifier's frequency
  /// feature). Priors are relative weights, not normalized.
  struct AliasEntry {
    ConceptId id = kInvalidConcept;
    double prior = 1.0;
  };

  /// Registers `alias` (case-insensitive) as a surface form of `id` with the
  /// given link prior. The same alias may map to several concepts
  /// (ambiguity); re-adding an existing pair keeps the larger prior.
  [[nodiscard]] Status AddAlias(std::string_view alias, ConceptId id, double prior = 1.0);

  /// Concept lookup; dies in debug on bad id, returns a stable reference.
  const Concept& GetConcept(ConceptId id) const { return concepts_[id]; }

  /// All candidate senses for a surface form (empty when unknown).
  const std::vector<AliasEntry>& LookupAlias(std::string_view alias) const;

  /// True if some alias with this exact (lowercased) text exists.
  bool HasAlias(std::string_view alias) const;

  /// Visits every (normalized alias, entry) pair in unspecified order.
  void ForEachAlias(
      const std::function<void(const std::string& alias,
                               const AliasEntry& entry)>& visit) const;

  /// Number of distinct alias surface forms.
  size_t num_aliases() const { return alias_index_.size(); }

  /// Longest registered alias length in words; the mention detector uses it
  /// to bound its window.
  size_t max_alias_words() const { return max_alias_words_; }

  /// Computes the indicator vector for a concept from category tags:
  /// h[k] = 1 iff any tag maps to domain k in the taxonomy. Unknown tags are
  /// skipped (Freebase categories outside the 26 mapped domains).
  std::vector<uint8_t> IndicatorFromCategories(
      const std::vector<std::string>& categories) const;

 private:
  DomainTaxonomy taxonomy_;
  std::vector<Concept> concepts_;
  std::unordered_map<std::string, std::vector<AliasEntry>> alias_index_;
  size_t max_alias_words_ = 0;
  std::vector<AliasEntry> empty_;
};

}  // namespace docs::kb

#endif  // DOCS_KB_KNOWLEDGE_BASE_H_
