#include "kb/kb_io.h"

#include <fstream>
#include <sstream>

#include "common/string_utils.h"

namespace docs::kb {
namespace {

std::string JoinKeywords(const std::vector<std::string>& keywords) {
  if (keywords.empty()) return "-";
  std::string out;
  for (size_t i = 0; i < keywords.size(); ++i) {
    if (i > 0) out += ',';
    out += keywords[i];
  }
  return out;
}

std::vector<std::string> SplitKeywords(const std::string& joined) {
  if (joined == "-") return {};
  return Split(joined, ",");
}

}  // namespace

Status SaveKnowledgeBase(const KnowledgeBase& kb, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out.is_open()) return IoError("cannot open " + path);
  out.precision(17);
  out << "docskb 1\n";
  const DomainTaxonomy& taxonomy = kb.taxonomy();
  for (size_t k = 0; k < taxonomy.size(); ++k) {
    out << "domain " << taxonomy.name(k) << '\n';
  }
  for (const auto& category : taxonomy.Categories()) {
    auto domain = taxonomy.DomainOfCategory(category);
    if (domain.ok()) {
      out << "category " << domain.value() << ' ' << category << '\n';
    }
  }
  for (ConceptId id = 0; id < kb.num_concepts(); ++id) {
    const Concept& concept_data = kb.GetConcept(id);
    out << "concept " << concept_data.popularity << ' ';
    for (uint8_t bit : concept_data.domain_indicator) {
      out << (bit ? '1' : '0');
    }
    out << ' ' << JoinKeywords(concept_data.context_keywords) << ' '
        << concept_data.title << '\n';
  }
  kb.ForEachAlias([&out](const std::string& alias,
                         const KnowledgeBase::AliasEntry& entry) {
    out << "alias " << entry.id << ' ' << entry.prior << ' ' << alias << '\n';
  });
  out.flush();
  if (!out.good()) return IoError("write failed: " + path);
  return OkStatus();
}

StatusOr<KnowledgeBase> LoadKnowledgeBase(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) return IoError("cannot open " + path);

  auto malformed = [&path](size_t line_number) {
    return DataLossError("malformed KB dump " + path + " at line " +
                         std::to_string(line_number));
  };

  std::string line;
  size_t line_number = 0;

  if (!std::getline(in, line) || Trim(line) != "docskb 1") {
    return DataLossError("bad KB dump header: " + path);
  }
  ++line_number;

  // Pass 1 gathers domains so the taxonomy exists before concepts arrive.
  // The format guarantees domains precede everything else, so a single
  // streaming pass with a deferred-taxonomy buffer suffices.
  std::vector<std::string> domain_names;
  struct PendingCategory {
    size_t domain;
    std::string category;
  };
  std::vector<PendingCategory> categories;
  struct PendingConcept {
    double popularity;
    std::string bits;
    std::string keywords;
    std::string title;
  };
  std::vector<PendingConcept> concepts;
  struct PendingAlias {
    ConceptId id;
    double prior;
    std::string alias;
  };
  std::vector<PendingAlias> aliases;

  while (std::getline(in, line)) {
    ++line_number;
    if (Trim(line).empty()) continue;
    std::istringstream fields(line);
    std::string directive;
    fields >> directive;
    if (directive == "domain") {
      std::string name;
      if (!(fields >> name)) return malformed(line_number);
      domain_names.push_back(std::move(name));
    } else if (directive == "category") {
      PendingCategory category;
      if (!(fields >> category.domain >> category.category)) {
        return malformed(line_number);
      }
      categories.push_back(std::move(category));
    } else if (directive == "concept") {
      PendingConcept concept_line;
      if (!(fields >> concept_line.popularity >> concept_line.bits >>
            concept_line.keywords)) {
        return malformed(line_number);
      }
      std::getline(fields, concept_line.title);
      concept_line.title = Trim(concept_line.title);
      if (concept_line.title.empty()) return malformed(line_number);
      concepts.push_back(std::move(concept_line));
    } else if (directive == "alias") {
      PendingAlias alias_line;
      if (!(fields >> alias_line.id >> alias_line.prior)) {
        return malformed(line_number);
      }
      std::getline(fields, alias_line.alias);
      alias_line.alias = Trim(alias_line.alias);
      if (alias_line.alias.empty()) return malformed(line_number);
      aliases.push_back(std::move(alias_line));
    } else {
      return malformed(line_number);
    }
  }

  if (domain_names.empty()) {
    return DataLossError("KB dump declares no domains: " + path);
  }
  DomainTaxonomy taxonomy = DomainTaxonomy::FromNames(domain_names);
  for (const auto& category : categories) {
    Status status = taxonomy.AddCategory(category.category, category.domain);
    if (!status.ok()) return status;
  }
  KnowledgeBase kb(std::move(taxonomy));
  for (const auto& pending : concepts) {
    Concept concept_data;
    concept_data.title = pending.title;
    concept_data.popularity = pending.popularity;
    if (pending.bits.size() != domain_names.size()) {
      return DataLossError("indicator arity mismatch in " + path);
    }
    concept_data.domain_indicator.reserve(pending.bits.size());
    for (char bit : pending.bits) {
      if (bit != '0' && bit != '1') {
        return DataLossError("bad indicator bit in " + path);
      }
      concept_data.domain_indicator.push_back(bit == '1' ? 1 : 0);
    }
    concept_data.context_keywords = SplitKeywords(pending.keywords);
    auto id = kb.AddConcept(std::move(concept_data));
    if (!id.ok()) return id.status();
  }
  for (const auto& pending : aliases) {
    Status status = kb.AddAlias(pending.alias, pending.id, pending.prior);
    if (!status.ok()) return status;
  }
  return kb;
}

}  // namespace docs::kb
