#include "topicmodel/twitter_lda.h"

#include <cmath>

#include "common/check.h"
#include "common/math_utils.h"
#include "common/rng.h"

namespace docs::topic {

TwitterLdaModel::TwitterLdaModel(TwitterLdaOptions options)
    : options_(options) {}

void TwitterLdaModel::Fit(const Corpus& corpus) {
  // Same sampler contracts as LdaModel::Fit, plus the background/topic
  // switch prior gamma (log of a non-positive count+gamma would be NaN).
  DOCS_CHECK_GT(options_.num_topics, size_t{0});
  DOCS_CHECK_GT(options_.alpha, 0.0);
  DOCS_CHECK_GT(options_.beta, 0.0);
  DOCS_CHECK_GT(options_.gamma, 0.0);
  const size_t num_topics = options_.num_topics;
  const size_t num_docs = corpus.num_documents();
  const size_t vocab = corpus.vocabulary_size();
  const double alpha = options_.alpha;
  const double beta = options_.beta;
  const double gamma = options_.gamma;
  const double vbeta = static_cast<double>(vocab) * beta;
  Rng rng(options_.seed);

  // State: one topic per document, one background switch per token.
  std::vector<int> doc_topic_assign(num_docs, 0);
  std::vector<std::vector<uint8_t>> is_topic_word(num_docs);

  // Counts.
  std::vector<int> docs_per_topic(num_topics, 0);
  std::vector<std::vector<int>> topic_word_count(num_topics,
                                                 std::vector<int>(vocab, 0));
  std::vector<int> topic_count(num_topics, 0);
  std::vector<int> background_word_count(vocab, 0);
  int background_total = 0;
  int topic_total = 0;

  for (size_t d = 0; d < num_docs; ++d) {
    const auto& doc = corpus.document(d);
    int k = static_cast<int>(rng.UniformInt(num_topics));
    doc_topic_assign[d] = k;
    ++docs_per_topic[k];
    is_topic_word[d].assign(doc.size(), 1);
    for (int w : doc) {
      ++topic_word_count[k][w];
      ++topic_count[k];
      ++topic_total;
    }
  }

  std::vector<double> log_weights(num_topics, 0.0);
  for (size_t iter = 0; iter < options_.iterations; ++iter) {
    for (size_t d = 0; d < num_docs; ++d) {
      const auto& doc = corpus.document(d);
      const int cur_topic = doc_topic_assign[d];

      // (1) Resample the background switch of each token.
      for (size_t i = 0; i < doc.size(); ++i) {
        const int w = doc[i];
        if (is_topic_word[d][i]) {
          --topic_word_count[cur_topic][w];
          --topic_count[cur_topic];
          --topic_total;
        } else {
          --background_word_count[w];
          --background_total;
        }
        const double p_background =
            (background_total + gamma) /
            (background_total + topic_total + 2.0 * gamma) *
            (background_word_count[w] + beta) / (background_total + vbeta);
        const double p_topic =
            (topic_total + gamma) /
            (background_total + topic_total + 2.0 * gamma) *
            (topic_word_count[cur_topic][w] + beta) /
            (topic_count[cur_topic] + vbeta);
        const bool topic_word =
            rng.Bernoulli(p_topic / std::max(1e-300, p_topic + p_background));
        is_topic_word[d][i] = topic_word ? 1 : 0;
        if (topic_word) {
          ++topic_word_count[cur_topic][w];
          ++topic_count[cur_topic];
          ++topic_total;
        } else {
          ++background_word_count[w];
          ++background_total;
        }
      }

      // (2) Resample the document topic given its topic words.
      --docs_per_topic[cur_topic];
      for (size_t i = 0; i < doc.size(); ++i) {
        if (!is_topic_word[d][i]) continue;
        const int w = doc[i];
        --topic_word_count[cur_topic][w];
        --topic_count[cur_topic];
      }
      for (size_t k = 0; k < num_topics; ++k) {
        double lw = std::log(docs_per_topic[k] + alpha);
        // Sequential predictive probability of this doc's topic words under
        // topic k (counts incremented as we go to stay exact).
        int added = 0;
        std::vector<int> local_add;  // parallel to topic words, for rollback
        local_add.reserve(doc.size());
        for (size_t i = 0; i < doc.size(); ++i) {
          if (!is_topic_word[d][i]) continue;
          const int w = doc[i];
          lw += std::log((topic_word_count[k][w] + beta) /
                         (topic_count[k] + vbeta));
          ++topic_word_count[k][w];
          ++topic_count[k];
          local_add.push_back(w);
          ++added;
        }
        // Roll back the temporary increments.
        for (int w : local_add) --topic_word_count[k][w];
        topic_count[k] -= added;
        log_weights[k] = lw;
      }
      // Sample from the log weights.
      double mx = log_weights[0];
      for (double lw : log_weights) mx = std::max(mx, lw);
      std::vector<double> weights(num_topics, 0.0);
      for (size_t k = 0; k < num_topics; ++k) {
        weights[k] = std::exp(log_weights[k] - mx);
      }
      const int new_topic = static_cast<int>(rng.SampleDiscrete(weights));
      doc_topic_assign[d] = new_topic;
      ++docs_per_topic[new_topic];
      for (size_t i = 0; i < doc.size(); ++i) {
        if (!is_topic_word[d][i]) continue;
        const int w = doc[i];
        ++topic_word_count[new_topic][w];
        ++topic_count[new_topic];
      }
    }
  }

  // Posterior per document from the final tables (leave-one-out on the
  // document's own assignment).
  doc_topic_.assign(num_docs, std::vector<double>(num_topics, 0.0));
  doc_assignment_.assign(num_docs, 0);
  for (size_t d = 0; d < num_docs; ++d) {
    const auto& doc = corpus.document(d);
    const int cur_topic = doc_topic_assign[d];
    --docs_per_topic[cur_topic];
    for (size_t i = 0; i < doc.size(); ++i) {
      if (!is_topic_word[d][i]) continue;
      --topic_word_count[cur_topic][doc[i]];
      --topic_count[cur_topic];
    }
    for (size_t k = 0; k < num_topics; ++k) {
      double lw = std::log(docs_per_topic[k] + alpha);
      int added = 0;
      std::vector<int> local_add;
      for (size_t i = 0; i < doc.size(); ++i) {
        if (!is_topic_word[d][i]) continue;
        const int w = doc[i];
        lw += std::log((topic_word_count[k][w] + beta) /
                       (topic_count[k] + vbeta));
        ++topic_word_count[k][w];
        ++topic_count[k];
        local_add.push_back(w);
        ++added;
      }
      for (int w : local_add) --topic_word_count[k][w];
      topic_count[k] -= added;
      log_weights[k] = lw;
    }
    double mx = log_weights[0];
    for (double lw : log_weights) mx = std::max(mx, lw);
    for (size_t k = 0; k < num_topics; ++k) {
      doc_topic_[d][k] = std::exp(log_weights[k] - mx);
    }
    NormalizeInPlace(doc_topic_[d]);
    DOCS_DCHECK_SIMPLEX(doc_topic_[d], 1e-6,
                        "Twitter-LDA doc-topic distribution");
    doc_assignment_[d] = static_cast<int>(ArgMax(doc_topic_[d]));
    ++docs_per_topic[cur_topic];
    for (size_t i = 0; i < doc.size(); ++i) {
      if (!is_topic_word[d][i]) continue;
      ++topic_word_count[cur_topic][doc[i]];
      ++topic_count[cur_topic];
    }
  }
}

}  // namespace docs::topic
