#ifndef DOCS_TOPICMODEL_LDA_H_
#define DOCS_TOPICMODEL_LDA_H_

#include <cstdint>
#include <vector>

#include "topicmodel/corpus.h"

namespace docs::topic {

struct LdaOptions {
  size_t num_topics = 4;
  double alpha = 0.5;  ///< Dirichlet prior on document-topic proportions.
  double beta = 0.1;   ///< Dirichlet prior on topic-word distributions.
  size_t iterations = 200;
  uint64_t seed = 7;
};

/// Latent Dirichlet Allocation [Blei et al. 2003] trained with collapsed
/// Gibbs sampling. This is the topic model used by the iCrowd baseline to
/// estimate each task's latent-domain distribution from its text.
class LdaModel {
 public:
  explicit LdaModel(LdaOptions options = {});

  /// Runs the sampler on `corpus`. May be called once per model instance.
  void Fit(const Corpus& corpus);

  /// Per-document topic distribution theta (num_documents x num_topics),
  /// estimated from the final sample with the alpha prior folded in.
  const std::vector<std::vector<double>>& doc_topic() const {
    return doc_topic_;
  }

  /// Per-topic word distribution phi (num_topics x vocabulary).
  const std::vector<std::vector<double>>& topic_word() const {
    return topic_word_;
  }

  const LdaOptions& options() const { return options_; }

 private:
  LdaOptions options_;
  std::vector<std::vector<double>> doc_topic_;
  std::vector<std::vector<double>> topic_word_;
};

/// Cosine similarity between two dense vectors (used by iCrowd to compare
/// task topic distributions). Returns 0 when either vector is all zeros.
double CosineSimilarity(const std::vector<double>& a,
                        const std::vector<double>& b);

}  // namespace docs::topic

#endif  // DOCS_TOPICMODEL_LDA_H_
