#ifndef DOCS_TOPICMODEL_CORPUS_H_
#define DOCS_TOPICMODEL_CORPUS_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace docs::topic {

/// A tokenized document collection with an integer vocabulary, shared by the
/// LDA and TwitterLDA models. Documents are added as token lists (the task
/// text descriptions, in the iCrowd/FaitCrowd baselines).
class Corpus {
 public:
  /// Interns `word` and returns its id.
  int AddWord(const std::string& word);

  /// Returns the id of `word` or -1 if never interned.
  int WordId(std::string_view word) const;

  /// Adds a document from raw text (tokenized with TokenizeWords).
  void AddDocumentText(std::string_view text);

  /// Adds a document from pre-split tokens.
  void AddDocumentTokens(const std::vector<std::string>& tokens);

  size_t num_documents() const { return documents_.size(); }
  size_t vocabulary_size() const { return words_.size(); }

  const std::vector<int>& document(size_t d) const { return documents_[d]; }
  const std::string& word(int id) const { return words_[id]; }

 private:
  std::unordered_map<std::string, int> vocab_;
  std::vector<std::string> words_;
  std::vector<std::vector<int>> documents_;
};

}  // namespace docs::topic

#endif  // DOCS_TOPICMODEL_CORPUS_H_
