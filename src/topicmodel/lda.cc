#include "topicmodel/lda.h"

#include <cmath>

#include "common/check.h"
#include "common/rng.h"

namespace docs::topic {

LdaModel::LdaModel(LdaOptions options) : options_(options) {}

void LdaModel::Fit(const Corpus& corpus) {
  // The Gibbs sampler divides by topic_count + V*beta and samples from
  // weights proportional to (count + alpha): zero topics or non-positive
  // hyperparameters would produce empty or degenerate samplers.
  DOCS_CHECK_GT(options_.num_topics, size_t{0});
  DOCS_CHECK_GT(options_.alpha, 0.0);
  DOCS_CHECK_GT(options_.beta, 0.0);
  const size_t num_topics = options_.num_topics;
  const size_t num_docs = corpus.num_documents();
  const size_t vocab = corpus.vocabulary_size();
  const double alpha = options_.alpha;
  const double beta = options_.beta;
  Rng rng(options_.seed);

  // Token-level topic assignments and count tables.
  std::vector<std::vector<int>> assignments(num_docs);
  std::vector<std::vector<int>> doc_topic_count(num_docs,
                                                std::vector<int>(num_topics, 0));
  std::vector<std::vector<int>> topic_word_count(num_topics,
                                                 std::vector<int>(vocab, 0));
  std::vector<int> topic_count(num_topics, 0);

  for (size_t d = 0; d < num_docs; ++d) {
    const auto& doc = corpus.document(d);
    assignments[d].resize(doc.size());
    for (size_t i = 0; i < doc.size(); ++i) {
      int k = static_cast<int>(rng.UniformInt(num_topics));
      assignments[d][i] = k;
      ++doc_topic_count[d][k];
      ++topic_word_count[k][doc[i]];
      ++topic_count[k];
    }
  }

  std::vector<double> weights(num_topics, 0.0);
  const double vbeta = static_cast<double>(vocab) * beta;
  for (size_t iter = 0; iter < options_.iterations; ++iter) {
    for (size_t d = 0; d < num_docs; ++d) {
      const auto& doc = corpus.document(d);
      for (size_t i = 0; i < doc.size(); ++i) {
        const int w = doc[i];
        const int old_k = assignments[d][i];
        --doc_topic_count[d][old_k];
        --topic_word_count[old_k][w];
        --topic_count[old_k];
        for (size_t k = 0; k < num_topics; ++k) {
          weights[k] = (doc_topic_count[d][k] + alpha) *
                       (topic_word_count[k][w] + beta) /
                       (topic_count[k] + vbeta);
        }
        const int new_k = static_cast<int>(rng.SampleDiscrete(weights));
        assignments[d][i] = new_k;
        ++doc_topic_count[d][new_k];
        ++topic_word_count[new_k][w];
        ++topic_count[new_k];
      }
    }
  }

  // Point estimates from the final sample.
  doc_topic_.assign(num_docs, std::vector<double>(num_topics, 0.0));
  for (size_t d = 0; d < num_docs; ++d) {
    const double denom = static_cast<double>(corpus.document(d).size()) +
                         static_cast<double>(num_topics) * alpha;
    for (size_t k = 0; k < num_topics; ++k) {
      doc_topic_[d][k] = (doc_topic_count[d][k] + alpha) / denom;
    }
  }
  topic_word_.assign(num_topics, std::vector<double>(vocab, 0.0));
  for (size_t k = 0; k < num_topics; ++k) {
    const double denom = topic_count[k] + vbeta;
    for (size_t w = 0; w < vocab; ++w) {
      topic_word_[k][w] = (topic_word_count[k][w] + beta) / denom;
    }
    if (vocab > 0) {
      DOCS_DCHECK_SIMPLEX(topic_word_[k], 1e-6,
                          "LDA topic-word distribution");
    }
  }
  for (size_t d = 0; d < num_docs; ++d) {
    DOCS_DCHECK_SIMPLEX(doc_topic_[d], 1e-6, "LDA doc-topic distribution");
  }
}

double CosineSimilarity(const std::vector<double>& a,
                        const std::vector<double>& b) {
  DOCS_CHECK_EQ(a.size(), b.size())
      << "cosine similarity over mismatched vectors";
  double dot = 0.0, na = 0.0, nb = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    dot += a[i] * b[i];
    na += a[i] * a[i];
    nb += b[i] * b[i];
  }
  if (na <= 0.0 || nb <= 0.0) return 0.0;
  return dot / (std::sqrt(na) * std::sqrt(nb));
}

}  // namespace docs::topic
