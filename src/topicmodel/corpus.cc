#include "topicmodel/corpus.h"

#include "common/string_utils.h"

namespace docs::topic {

int Corpus::AddWord(const std::string& word) {
  auto it = vocab_.find(word);
  if (it != vocab_.end()) return it->second;
  int id = static_cast<int>(words_.size());
  vocab_.emplace(word, id);
  words_.push_back(word);
  return id;
}

int Corpus::WordId(std::string_view word) const {
  auto it = vocab_.find(std::string(word));
  return it == vocab_.end() ? -1 : it->second;
}

void Corpus::AddDocumentText(std::string_view text) {
  AddDocumentTokens(TokenizeWords(text));
}

void Corpus::AddDocumentTokens(const std::vector<std::string>& tokens) {
  std::vector<int> doc;
  doc.reserve(tokens.size());
  for (const auto& token : tokens) doc.push_back(AddWord(token));
  documents_.push_back(std::move(doc));
}

}  // namespace docs::topic
