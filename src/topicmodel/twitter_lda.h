#ifndef DOCS_TOPICMODEL_TWITTER_LDA_H_
#define DOCS_TOPICMODEL_TWITTER_LDA_H_

#include <cstdint>
#include <vector>

#include "topicmodel/corpus.h"

namespace docs::topic {

struct TwitterLdaOptions {
  size_t num_topics = 4;
  double alpha = 0.5;   ///< Dirichlet prior on the global topic proportions.
  double beta = 0.1;    ///< Dirichlet prior on topic/background word dists.
  double gamma = 1.0;   ///< Beta prior on the background switch.
  size_t iterations = 200;
  uint64_t seed = 11;
};

/// TwitterLDA [Zhao et al. 2011]: a short-text topic model in which each
/// document draws a single topic, and each word either comes from that
/// topic's distribution or from a shared background distribution. This is
/// the model the FaitCrowd baseline uses for task-domain detection.
class TwitterLdaModel {
 public:
  explicit TwitterLdaModel(TwitterLdaOptions options = {});

  /// Runs collapsed Gibbs sampling on `corpus`.
  void Fit(const Corpus& corpus);

  /// Posterior topic distribution per document, computed from the final
  /// count tables (num_documents x num_topics).
  const std::vector<std::vector<double>>& doc_topic() const {
    return doc_topic_;
  }

  /// Hard topic assignment per document (argmax of doc_topic()).
  const std::vector<int>& doc_assignment() const { return doc_assignment_; }

  const TwitterLdaOptions& options() const { return options_; }

 private:
  TwitterLdaOptions options_;
  std::vector<std::vector<double>> doc_topic_;
  std::vector<int> doc_assignment_;
};

}  // namespace docs::topic

#endif  // DOCS_TOPICMODEL_TWITTER_LDA_H_
