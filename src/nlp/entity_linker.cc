#include "nlp/entity_linker.h"

#include <algorithm>
#include <unordered_set>

#include "common/string_utils.h"

namespace docs::nlp {

EntityLinker::EntityLinker(const kb::KnowledgeBase* knowledge_base,
                           EntityLinkerOptions options)
    : kb_(knowledge_base), options_(options) {}

std::vector<LinkedEntity> EntityLinker::Link(std::string_view text) const {
  std::vector<std::string> tokens = TokenizeWords(text);
  std::unordered_set<std::string> token_set(tokens.begin(), tokens.end());

  std::vector<LinkedEntity> entities;
  const size_t max_words = std::max<size_t>(1, kb_->max_alias_words());

  size_t i = 0;
  while (i < tokens.size()) {
    size_t matched_len = 0;
    std::string matched_alias;
    // Greedy longest match against the alias dictionary.
    size_t limit = std::min(max_words, tokens.size() - i);
    for (size_t len = limit; len >= 1; --len) {
      std::string window = tokens[i];
      for (size_t j = 1; j < len; ++j) {
        window += ' ';
        window += tokens[i + j];
      }
      if (kb_->HasAlias(window)) {
        matched_len = len;
        matched_alias = std::move(window);
        break;
      }
    }
    if (matched_len == 0) {
      ++i;
      continue;
    }

    const auto& candidate_entries = kb_->LookupAlias(matched_alias);
    LinkedEntity entity;
    entity.mention = matched_alias;
    entity.token_begin = i;
    entity.token_end = i + matched_len;
    entity.candidates.reserve(candidate_entries.size());

    double total = 0.0;
    for (const auto& entry : candidate_entries) {
      const kb::ConceptId id = entry.id;
      const kb::Concept& candidate_concept = kb_->GetConcept(id);
      // Context overlap: how many of the concept's keywords appear in the
      // task text (the mention's own tokens count, mirroring Wikifier's
      // string-similarity feature).
      size_t overlap = 0;
      for (const auto& keyword : candidate_concept.context_keywords) {
        if (token_set.count(keyword) > 0) ++overlap;
      }
      double score = entry.prior * candidate_concept.popularity *
                     (1.0 + options_.context_weight * static_cast<double>(overlap));
      entity.candidates.push_back({id, score});
      total += score;
    }
    if (total > 0.0) {
      for (auto& c : entity.candidates) c.probability /= total;
    }
    std::sort(entity.candidates.begin(), entity.candidates.end(),
              [](const CandidateLink& a, const CandidateLink& b) {
                if (a.probability != b.probability) {
                  return a.probability > b.probability;
                }
                return a.concept_id < b.concept_id;
              });
    if (entity.candidates.size() > options_.max_candidates) {
      entity.candidates.resize(options_.max_candidates);
      double kept = 0.0;
      for (const auto& c : entity.candidates) kept += c.probability;
      if (kept > 0.0) {
        for (auto& c : entity.candidates) c.probability /= kept;
      }
    }
    entities.push_back(std::move(entity));
    i += matched_len;
  }

  if (options_.coherence_weight > 0.0 && entities.size() > 1) {
    ApplyCoherence(&entities);
  }
  return entities;
}

void EntityLinker::ApplyCoherence(std::vector<LinkedEntity>* entities) const {
  const size_t m = kb_->num_domains();

  // Probability-weighted domain mass contributed by each mention's current
  // candidate distribution.
  std::vector<std::vector<double>> contribution(entities->size(),
                                                std::vector<double>(m, 0.0));
  std::vector<double> aggregate(m, 0.0);
  for (size_t e = 0; e < entities->size(); ++e) {
    for (const auto& candidate : (*entities)[e].candidates) {
      const auto& indicator =
          kb_->GetConcept(candidate.concept_id).domain_indicator;
      for (size_t k = 0; k < m; ++k) {
        if (indicator[k]) {
          contribution[e][k] += candidate.probability;
          aggregate[k] += candidate.probability;
        }
      }
    }
  }

  for (size_t e = 0; e < entities->size(); ++e) {
    LinkedEntity& entity = (*entities)[e];
    // Domain mass from the *other* mentions.
    std::vector<double> others(m, 0.0);
    double others_total = 0.0;
    for (size_t k = 0; k < m; ++k) {
      others[k] = aggregate[k] - contribution[e][k];
      others_total += others[k];
    }
    if (others_total <= 0.0) continue;
    double total = 0.0;
    for (auto& candidate : entity.candidates) {
      const auto& indicator =
          kb_->GetConcept(candidate.concept_id).domain_indicator;
      double agreement = 0.0;
      for (size_t k = 0; k < m; ++k) {
        if (indicator[k]) agreement += others[k];
      }
      candidate.probability *=
          1.0 + options_.coherence_weight * agreement / others_total;
      total += candidate.probability;
    }
    if (total > 0.0) {
      for (auto& candidate : entity.candidates) {
        candidate.probability /= total;
      }
    }
    std::sort(entity.candidates.begin(), entity.candidates.end(),
              [](const CandidateLink& a, const CandidateLink& b) {
                if (a.probability != b.probability) {
                  return a.probability > b.probability;
                }
                return a.concept_id < b.concept_id;
              });
  }
}

}  // namespace docs::nlp
