#ifndef DOCS_NLP_ENTITY_LINKER_H_
#define DOCS_NLP_ENTITY_LINKER_H_

#include <string>
#include <string_view>
#include <vector>

#include "kb/knowledge_base.h"

namespace docs::nlp {

/// One candidate concept for a detected mention, with the probability that
/// the link is correct (the p_{i,j} of DVE's step 1).
struct CandidateLink {
  kb::ConceptId concept_id = kb::kInvalidConcept;
  double probability = 0.0;
};

/// A mention detected in a task's text together with its candidate
/// distribution p_i (sorted by decreasing probability, summing to 1).
struct LinkedEntity {
  std::string mention;
  size_t token_begin = 0;  // [token_begin, token_end) in the tokenized text
  size_t token_end = 0;
  std::vector<CandidateLink> candidates;
};

struct EntityLinkerOptions {
  /// Keep the top-c candidates per entity (Wikifier's top-20; Table 3 also
  /// evaluates 10 and 3).
  size_t max_candidates = 20;
  /// Relative weight of context-keyword overlap vs. the popularity prior.
  double context_weight = 4.0;
  /// Strength of the global coherence pass (0 disables it). Wikifier's
  /// "global" algorithms [36] and relational wikification [10] boost
  /// candidates whose domains agree with the other mentions' likely senses:
  /// in "Michael Jordan and Scottie Pippen", Pippen's unambiguous sports
  /// sense pulls the Jordan mention toward the basketball player.
  double coherence_weight = 0.0;
};

/// Dictionary-based entity linker standing in for Wikifier [36, 10]:
///  1. tokenize the text;
///  2. greedy longest-match mention detection over the KB alias index;
///  3. for each mention, score every candidate concept by
///     popularity * (1 + context_weight * |text tokens  ∩ concept keywords|)
///     and normalize into a probability distribution;
///  4. truncate to the top-c candidates and re-normalize.
class EntityLinker {
 public:
  /// `knowledge_base` must outlive the linker.
  explicit EntityLinker(const kb::KnowledgeBase* knowledge_base,
                        EntityLinkerOptions options = {});

  /// Detects and disambiguates all entities in `text`.
  std::vector<LinkedEntity> Link(std::string_view text) const;

  const EntityLinkerOptions& options() const { return options_; }

 private:
  /// Second pass: re-weights every mention's candidates by how well their
  /// domains agree with the other mentions' (probability-weighted) domains,
  /// then re-normalizes and re-sorts.
  void ApplyCoherence(std::vector<LinkedEntity>* entities) const;

  const kb::KnowledgeBase* kb_;
  EntityLinkerOptions options_;
};

}  // namespace docs::nlp

#endif  // DOCS_NLP_ENTITY_LINKER_H_
