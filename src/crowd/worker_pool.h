#ifndef DOCS_CROWD_WORKER_POOL_H_
#define DOCS_CROWD_WORKER_POOL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"

namespace docs::crowd {

/// A simulated crowd worker: a latent per-domain true quality vector q̃ (the
/// quantity Fig. 6 plots) plus an activity weight controlling how often the
/// worker shows up (AMT activity is heavily skewed; Fig. 6 needs workers
/// with > 20 and > 80 answered tasks).
struct SimulatedWorker {
  std::string id;
  std::vector<double> true_quality;
  double activity = 1.0;
  /// >= 0: a "constant answerer" who always submits this choice (clamped to
  /// the task's choice count) regardless of the question — a correlated
  /// adversary pattern common on real platforms. Such coalitions are what
  /// make truth-inference initialization (golden tasks) matter.
  int constant_choice = -1;
  /// Per-HIT probability that the worker accepts the HIT, answers a random
  /// prefix of it, and disappears — the AMT no-show/abandonment pattern
  /// that lease expiry exists to absorb. 0 never abandons.
  double abandon_probability = 0.0;
};

struct WorkerPoolOptions {
  size_t num_workers = 120;
  /// Fraction of near-random workers ("spammers").
  double spammer_fraction = 0.1;
  /// Baseline accuracy range for non-expert domains.
  double base_min = 0.55;
  double base_max = 0.75;
  /// Accuracy range in the worker's expert domains.
  double expert_min = 0.85;
  double expert_max = 0.97;
  /// Spammer accuracy range (near chance for binary tasks).
  double spammer_min = 0.35;
  double spammer_max = 0.55;
  size_t min_expert_domains = 1;
  size_t max_expert_domains = 3;
  /// Fraction of workers who always submit the first choice.
  double constant_answerer_fraction = 0.0;
  /// Fraction of workers prone to abandoning HITs mid-way, and the per-HIT
  /// probability with which such a worker does so.
  double dropout_fraction = 0.0;
  double dropout_abandon_probability = 0.5;
  /// Probability that each expert domain is drawn from `focus_domains`
  /// (the dataset's domains) rather than uniformly from all m domains.
  double focus_probability = 0.8;
  /// Log-normal activity skew (sigma of ln activity).
  double activity_sigma = 1.0;
};

/// Generates a worker pool over `num_domains` domains. `focus_domains`, when
/// non-empty, biases expertise toward the dataset's domains so that domain-
/// aware assignment has signal to exploit.
std::vector<SimulatedWorker> MakeWorkerPool(
    size_t num_domains, const std::vector<size_t>& focus_domains,
    const WorkerPoolOptions& options, uint64_t seed);

/// Simulates one answer: correct with probability q̃[true_domain], otherwise
/// a uniformly random wrong choice (the error model of Eq. 4).
size_t GenerateAnswer(const SimulatedWorker& worker, size_t true_domain,
                      size_t truth, size_t num_choices, Rng& rng);

/// Same, with an intrinsic task difficulty d in [0, 1]: the worker's
/// effective accuracy is q̃ (1 - d) + d / num_choices — at d = 1 every
/// worker guesses uniformly regardless of skill.
size_t GenerateAnswerWithDifficulty(const SimulatedWorker& worker,
                                    size_t true_domain, size_t truth,
                                    size_t num_choices, double difficulty,
                                    Rng& rng);

}  // namespace docs::crowd

#endif  // DOCS_CROWD_WORKER_POOL_H_
