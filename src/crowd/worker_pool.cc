#include "crowd/worker_pool.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

namespace docs::crowd {

std::vector<SimulatedWorker> MakeWorkerPool(
    size_t num_domains, const std::vector<size_t>& focus_domains,
    const WorkerPoolOptions& options, uint64_t seed) {
  Rng rng(seed);
  std::vector<SimulatedWorker> workers;
  workers.reserve(options.num_workers);
  for (size_t w = 0; w < options.num_workers; ++w) {
    SimulatedWorker worker;
    worker.id = "worker_" + std::to_string(w);
    worker.activity = std::exp(rng.Gaussian(0.0, options.activity_sigma));
    if (rng.Bernoulli(options.constant_answerer_fraction)) {
      worker.constant_choice = 0;
    }
    // Guarded so the default (no dropout) consumes no RNG draws and existing
    // seeded pools are reproduced bit-for-bit.
    if (options.dropout_fraction > 0.0 &&
        rng.Bernoulli(options.dropout_fraction)) {
      worker.abandon_probability = options.dropout_abandon_probability;
    }
    const bool spammer = rng.Bernoulli(options.spammer_fraction);
    worker.true_quality.resize(num_domains);
    for (size_t k = 0; k < num_domains; ++k) {
      worker.true_quality[k] =
          spammer ? rng.UniformDoubleRange(options.spammer_min,
                                           options.spammer_max)
                  : rng.UniformDoubleRange(options.base_min, options.base_max);
    }
    if (!spammer) {
      const size_t num_experts = options.min_expert_domains +
                                 rng.UniformInt(options.max_expert_domains -
                                                options.min_expert_domains + 1);
      std::unordered_set<size_t> chosen;
      size_t guard = 0;
      while (chosen.size() < num_experts && guard < 50) {
        ++guard;
        size_t domain;
        if (!focus_domains.empty() &&
            rng.Bernoulli(options.focus_probability)) {
          domain = focus_domains[rng.UniformInt(focus_domains.size())];
        } else {
          domain = rng.UniformInt(num_domains);
        }
        chosen.insert(domain);
      }
      for (size_t domain : chosen) {
        worker.true_quality[domain] =
            rng.UniformDoubleRange(options.expert_min, options.expert_max);
      }
    }
    workers.push_back(std::move(worker));
  }
  return workers;
}

size_t GenerateAnswer(const SimulatedWorker& worker, size_t true_domain,
                      size_t truth, size_t num_choices, Rng& rng) {
  return GenerateAnswerWithDifficulty(worker, true_domain, truth, num_choices,
                                      /*difficulty=*/0.0, rng);
}

size_t GenerateAnswerWithDifficulty(const SimulatedWorker& worker,
                                    size_t true_domain, size_t truth,
                                    size_t num_choices, double difficulty,
                                    Rng& rng) {
  if (worker.constant_choice >= 0) {
    return std::min<size_t>(static_cast<size_t>(worker.constant_choice),
                            num_choices - 1);
  }
  const double skill = worker.true_quality[true_domain];
  const double chance =
      num_choices > 0 ? 1.0 / static_cast<double>(num_choices) : 1.0;
  const double quality = skill * (1.0 - difficulty) + chance * difficulty;
  if (rng.Bernoulli(quality) || num_choices < 2) return truth;
  size_t wrong = rng.UniformInt(num_choices - 1);
  if (wrong >= truth) ++wrong;
  return wrong;
}

}  // namespace docs::crowd
