#ifndef DOCS_CROWD_CAMPAIGN_H_
#define DOCS_CROWD_CAMPAIGN_H_

#include <cstdint>
#include <vector>

#include "core/assignment_policy.h"
#include "core/types.h"
#include "crowd/worker_pool.h"
#include "datasets/dataset.h"

namespace docs::crowd {

/// Output of a fixed-redundancy answer-collection run (the protocol used for
/// the TI experiments of Section 6.3: each task answered by exactly R
/// workers, HITs of `hit_size` tasks).
struct CollectionResult {
  std::vector<core::Answer> answers;
  size_t num_workers = 0;
  /// HITs completed (each costs reward_per_hit on AMT in the paper's setup).
  size_t hits = 0;
  /// Total payout: hits x reward. The paper's datasets cost $18 / $20 /
  /// $50 / $16.40 at $0.1 per 20-task HIT with 10 answers per task.
  double cost_dollars = 0.0;
};

struct CollectionOptions {
  size_t answers_per_task = 10;  ///< R; the paper assigns each task 10 times.
  size_t hit_size = 20;          ///< k = 20 tasks per HIT.
  double reward_per_hit = 0.1;   ///< dollars paid per completed HIT.
  uint64_t seed = 99;
};

/// Simulates the AMT collection of Section 6.1: workers arrive with
/// probability proportional to their activity, each HIT batches `hit_size`
/// tasks that still need answers and that the worker has not answered, and
/// every answer is produced by the worker's latent quality in the task's
/// true domain.
CollectionResult CollectAnswers(const datasets::Dataset& dataset,
                                const std::vector<SimulatedWorker>& workers,
                                const CollectionOptions& options);

/// Per-policy outcome of an end-to-end assignment campaign (Fig. 8).
struct PolicyOutcome {
  std::string name;
  std::vector<size_t> inferred_choices;
  size_t answers_collected = 0;
  /// Worst-case single SelectTasks latency in seconds (Fig. 8(b)).
  double worst_assignment_seconds = 0.0;
  double total_assignment_seconds = 0.0;
  size_t assignment_calls = 0;
};

struct CampaignOptions {
  size_t tasks_per_policy_per_hit = 3;  ///< Section 6.1 uses 3 x 6 methods.
  size_t total_answers_per_policy = 0;  ///< 0 means tasks * 10.
  uint64_t seed = 7;
};

/// Runs the parallel-assignment protocol of Section 6.1: when a simulated
/// worker comes, every policy independently selects its tasks; the worker's
/// answer to a given task is drawn once and shared by all policies that
/// assigned it (the real worker answers a task once inside the combined
/// HIT). The campaign stops when every policy has consumed its answer
/// budget.
std::vector<PolicyOutcome> RunAssignmentCampaign(
    const datasets::Dataset& dataset,
    const std::vector<SimulatedWorker>& workers,
    const std::vector<core::AssignmentPolicy*>& policies,
    const CampaignOptions& options);

/// Converts a dataset into the core Task representation using the *latent*
/// ground-truth domain as a one-hot domain vector — used by oracle baselines
/// and by simulation-only experiments that bypass DVE.
std::vector<core::Task> TasksWithOneHotDomains(
    const datasets::Dataset& dataset, size_t num_domains);

}  // namespace docs::crowd

#endif  // DOCS_CROWD_CAMPAIGN_H_
