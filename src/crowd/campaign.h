#ifndef DOCS_CROWD_CAMPAIGN_H_
#define DOCS_CROWD_CAMPAIGN_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/assignment_policy.h"
#include "core/concurrent_docs_system.h"
#include "core/types.h"
#include "crowd/worker_pool.h"
#include "datasets/dataset.h"

namespace docs::crowd {

/// Output of a fixed-redundancy answer-collection run (the protocol used for
/// the TI experiments of Section 6.3: each task answered by exactly R
/// workers, HITs of `hit_size` tasks).
struct CollectionResult {
  std::vector<core::Answer> answers;
  size_t num_workers = 0;
  /// HITs completed (each costs reward_per_hit on AMT in the paper's setup).
  size_t hits = 0;
  /// Total payout: hits x reward. The paper's datasets cost $18 / $20 /
  /// $50 / $16.40 at $0.1 per 20-task HIT with 10 answers per task.
  double cost_dollars = 0.0;
};

struct CollectionOptions {
  size_t answers_per_task = 10;  ///< R; the paper assigns each task 10 times.
  size_t hit_size = 20;          ///< k = 20 tasks per HIT.
  double reward_per_hit = 0.1;   ///< dollars paid per completed HIT.
  uint64_t seed = 99;
};

/// Simulates the AMT collection of Section 6.1: workers arrive with
/// probability proportional to their activity, each HIT batches `hit_size`
/// tasks that still need answers and that the worker has not answered, and
/// every answer is produced by the worker's latent quality in the task's
/// true domain.
CollectionResult CollectAnswers(const datasets::Dataset& dataset,
                                const std::vector<SimulatedWorker>& workers,
                                const CollectionOptions& options);

/// Per-policy outcome of an end-to-end assignment campaign (Fig. 8).
struct PolicyOutcome {
  std::string name;
  std::vector<size_t> inferred_choices;
  size_t answers_collected = 0;
  /// Worst-case single SelectTasks latency in seconds (Fig. 8(b)).
  double worst_assignment_seconds = 0.0;
  double total_assignment_seconds = 0.0;
  size_t assignment_calls = 0;
};

struct CampaignOptions {
  size_t tasks_per_policy_per_hit = 3;  ///< Section 6.1 uses 3 x 6 methods.
  size_t total_answers_per_policy = 0;  ///< 0 means tasks * 10.
  uint64_t seed = 7;
};

/// Runs the parallel-assignment protocol of Section 6.1: when a simulated
/// worker comes, every policy independently selects its tasks; the worker's
/// answer to a given task is drawn once and shared by all policies that
/// assigned it (the real worker answers a task once inside the combined
/// HIT). The campaign stops when every policy has consumed its answer
/// budget.
std::vector<PolicyOutcome> RunAssignmentCampaign(
    const datasets::Dataset& dataset,
    const std::vector<SimulatedWorker>& workers,
    const std::vector<core::AssignmentPolicy*>& policies,
    const CampaignOptions& options);

/// Configuration of a chaos campaign: answer collection through the serving
/// facade under worker abandonment, periodic lease-expiry sweeps, periodic
/// checkpoint saves (each retried a bounded number of times, surviving
/// injected storage faults), and periodic crash/recover cycles that tear the
/// system down and rebuild it from the latest checkpoint.
///
/// The run is deterministic in `seed`: the worker-arrival and answer RNG
/// lives in the campaign (not the system), saves retry without consuming
/// randomness, and crashes happen only after a successful save — so a run
/// with storage faults armed collects exactly the same answers, and infers
/// exactly the same truths, as a fault-free run. That equivalence is the
/// recovery property the chaos tests assert.
struct ChaosCampaignOptions {
  size_t hit_size = 4;
  /// Total answers to collect (0 => 10 per task).
  size_t total_answers = 0;
  uint64_t seed = 17;
  /// Run a lease-expiry sweep every this many worker arrivals (0 = never).
  size_t expire_every = 8;
  /// Save a checkpoint every this many collected answers (0 = never).
  size_t checkpoint_every = 0;
  /// Crash and recover after every Nth successful checkpoint (0 = never).
  size_t crash_every_checkpoints = 0;
  std::string checkpoint_path;
  /// Bounded retry budget per checkpoint save.
  size_t save_attempts = 8;
  /// Safety cap on worker arrivals (0 = derived from the answer budget).
  size_t max_arrivals = 0;
};

struct ChaosCampaignResult {
  std::vector<size_t> inferred_choices;
  size_t answers = 0;
  size_t hits = 0;
  /// HITs the worker walked away from / grants left unanswered by them.
  size_t abandoned_hits = 0;
  size_t abandoned_answers = 0;
  /// Leases reclaimed by the periodic expiry sweeps.
  size_t expired_leases = 0;
  size_t checkpoints = 0;
  size_t crashes = 0;
  /// Save attempts that failed and were retried (injected storage faults).
  size_t save_failures = 0;
  /// Submissions the system rejected (validation errors).
  size_t rejected_answers = 0;
  /// True when the answer budget was met before the arrival cap.
  bool completed = false;
};

/// Runs answer collection against `make_system()` (a factory so crash cycles
/// can rebuild the system from scratch and reload the checkpoint). The
/// factory returns a fresh, empty ConcurrentDocsSystem configured by the
/// caller (lease_duration, redundancy cap, golden count, ...); the campaign
/// ingests the dataset's tasks itself on first build.
ChaosCampaignResult RunChaosCampaign(
    const datasets::Dataset& dataset,
    const std::vector<SimulatedWorker>& workers,
    const std::function<std::unique_ptr<core::ConcurrentDocsSystem>()>&
        make_system,
    const ChaosCampaignOptions& options);

/// Converts a dataset into the core Task representation using the *latent*
/// ground-truth domain as a one-hot domain vector — used by oracle baselines
/// and by simulation-only experiments that bypass DVE.
std::vector<core::Task> TasksWithOneHotDomains(
    const datasets::Dataset& dataset, size_t num_domains);

}  // namespace docs::crowd

#endif  // DOCS_CROWD_CAMPAIGN_H_
