#include "crowd/campaign.h"

#include <algorithm>
#include <unordered_map>

#include "common/rng.h"
#include "common/stopwatch.h"

namespace docs::crowd {
namespace {

// Samples a worker index proportionally to activity.
size_t SampleWorker(const std::vector<SimulatedWorker>& workers,
                    std::vector<double>& weights, Rng& rng) {
  if (weights.empty()) {
    weights.reserve(workers.size());
    for (const auto& worker : workers) weights.push_back(worker.activity);
  }
  return rng.SampleDiscrete(weights);
}

}  // namespace

CollectionResult CollectAnswers(const datasets::Dataset& dataset,
                                const std::vector<SimulatedWorker>& workers,
                                const CollectionOptions& options) {
  Rng rng(options.seed);
  const size_t n = dataset.tasks.size();
  CollectionResult result;
  result.num_workers = workers.size();

  std::vector<size_t> remaining(n, options.answers_per_task);
  std::vector<std::vector<uint8_t>> answered(
      workers.size(), std::vector<uint8_t>(n, 0));
  size_t open_answers = n * options.answers_per_task;
  std::vector<double> weights;

  size_t stall_guard = 0;
  const size_t max_stalls = 50 * workers.size() + 1000;
  while (open_answers > 0 && stall_guard < max_stalls) {
    const size_t w = SampleWorker(workers, weights, rng);
    // Build this worker's HIT: tasks still needing answers, preferring the
    // most-starved tasks so the collection terminates cleanly.
    std::vector<size_t> order;
    order.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      if (remaining[i] > 0 && !answered[w][i]) order.push_back(i);
    }
    if (order.empty()) {
      ++stall_guard;
      continue;
    }
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      if (remaining[a] != remaining[b]) return remaining[a] > remaining[b];
      return a < b;
    });
    const size_t hit = std::min(options.hit_size, order.size());
    for (size_t idx = 0; idx < hit; ++idx) {
      const size_t task = order[idx];
      const auto& spec = dataset.tasks[task];
      const size_t choice = GenerateAnswerWithDifficulty(
          workers[w], spec.true_domain, spec.truth, spec.num_choices(),
          spec.difficulty, rng);
      result.answers.push_back({task, w, choice});
      answered[w][task] = 1;
      --remaining[task];
      --open_answers;
    }
    ++result.hits;
    stall_guard = 0;
  }
  result.cost_dollars =
      static_cast<double>(result.hits) * options.reward_per_hit;
  return result;
}

std::vector<PolicyOutcome> RunAssignmentCampaign(
    const datasets::Dataset& dataset,
    const std::vector<SimulatedWorker>& workers,
    const std::vector<core::AssignmentPolicy*>& policies,
    const CampaignOptions& options) {
  Rng rng(options.seed);
  const size_t n = dataset.tasks.size();
  const size_t budget = options.total_answers_per_policy > 0
                            ? options.total_answers_per_policy
                            : n * 10;

  std::vector<PolicyOutcome> outcomes(policies.size());
  for (size_t p = 0; p < policies.size(); ++p) {
    outcomes[p].name = policies[p]->name();
  }

  // A worker answers any given task exactly once across the whole combined
  // HIT; the answer is memoized and shared by all policies that assigned it.
  std::unordered_map<uint64_t, size_t> memoized_answers;
  auto answer_of = [&](size_t worker, size_t task) {
    const uint64_t key = (static_cast<uint64_t>(worker) << 32) | task;
    auto it = memoized_answers.find(key);
    if (it != memoized_answers.end()) return it->second;
    const auto& spec = dataset.tasks[task];
    const size_t choice = GenerateAnswerWithDifficulty(
        workers[worker], spec.true_domain, spec.truth, spec.num_choices(),
        spec.difficulty, rng);
    memoized_answers.emplace(key, choice);
    return choice;
  };

  std::vector<double> weights;
  std::vector<uint8_t> done(policies.size(), 0);
  size_t stall_guard = 0;
  const size_t max_stalls = 100 * workers.size() + 1000;
  for (;;) {
    bool all_done = true;
    for (size_t p = 0; p < policies.size(); ++p) {
      if (!done[p]) all_done = false;
    }
    if (all_done || stall_guard >= max_stalls) break;

    const size_t w = SampleWorker(workers, weights, rng);
    bool any_assigned = false;
    for (size_t p = 0; p < policies.size(); ++p) {
      if (done[p]) continue;
      PolicyOutcome& outcome = outcomes[p];
      const size_t want = std::min(options.tasks_per_policy_per_hit,
                                   budget - outcome.answers_collected);
      if (want == 0) {
        done[p] = 1;
        continue;
      }
      Stopwatch stopwatch;
      std::vector<size_t> selected = policies[p]->SelectTasks(w, want);
      const double elapsed = stopwatch.ElapsedSeconds();
      outcome.worst_assignment_seconds =
          std::max(outcome.worst_assignment_seconds, elapsed);
      outcome.total_assignment_seconds += elapsed;
      ++outcome.assignment_calls;
      if (selected.empty()) continue;
      any_assigned = true;
      for (size_t task : selected) {
        const size_t choice = answer_of(w, task);
        policies[p]->OnAnswer(w, task, choice);
        ++outcome.answers_collected;
        if (outcome.answers_collected >= budget) {
          done[p] = 1;
          break;
        }
      }
    }
    stall_guard = any_assigned ? 0 : stall_guard + 1;
  }

  for (size_t p = 0; p < policies.size(); ++p) {
    outcomes[p].inferred_choices = policies[p]->InferredChoices();
  }
  return outcomes;
}

ChaosCampaignResult RunChaosCampaign(
    const datasets::Dataset& dataset,
    const std::vector<SimulatedWorker>& workers,
    const std::function<std::unique_ptr<core::ConcurrentDocsSystem>()>&
        make_system,
    const ChaosCampaignOptions& options) {
  Rng rng(options.seed);
  ChaosCampaignResult result;

  std::vector<core::TaskInput> inputs;
  inputs.reserve(dataset.tasks.size());
  for (const auto& spec : dataset.tasks) {
    inputs.push_back({spec.text, spec.num_choices()});
  }
  const std::vector<size_t> truths = dataset.Truths();

  auto system = make_system();
  {
    Status status = system->AddTasks(inputs, &truths);
    if (!status.ok()) return result;
  }

  const size_t budget = options.total_answers > 0 ? options.total_answers
                                                  : dataset.tasks.size() * 10;
  const size_t max_arrivals =
      options.max_arrivals > 0 ? options.max_arrivals : budget * 20 + 1000;
  const bool checkpointing =
      options.checkpoint_every > 0 && !options.checkpoint_path.empty();

  std::vector<double> weights;
  size_t arrivals = 0;
  size_t answers_at_last_checkpoint = 0;
  while (result.answers < budget && arrivals < max_arrivals) {
    ++arrivals;
    if (options.expire_every > 0 && arrivals % options.expire_every == 0) {
      result.expired_leases +=
          system->ExpireLeases(system->lease_clock()).size();
    }

    const size_t w = SampleWorker(workers, weights, rng);
    const std::vector<size_t> hit = system->RequestTasks(
        workers[w].id, std::min(options.hit_size, budget - result.answers));
    if (hit.empty()) continue;
    ++result.hits;

    // Abandonment: the worker answers a random prefix of the HIT and
    // vanishes; the unanswered grants stay leased until an expiry sweep.
    size_t answered = hit.size();
    if (workers[w].abandon_probability > 0.0 &&
        rng.Bernoulli(workers[w].abandon_probability)) {
      answered = rng.UniformInt(hit.size());
      ++result.abandoned_hits;
    }
    result.abandoned_answers += hit.size() - answered;

    for (size_t idx = 0; idx < answered; ++idx) {
      const size_t task = hit[idx];
      const auto& spec = dataset.tasks[task];
      const size_t choice = GenerateAnswerWithDifficulty(
          workers[w], spec.true_domain, spec.truth, spec.num_choices(),
          spec.difficulty, rng);
      if (system->SubmitAnswer(workers[w].id, task, choice).ok()) {
        ++result.answers;
      } else {
        ++result.rejected_answers;
      }
    }

    if (!checkpointing ||
        result.answers - answers_at_last_checkpoint < options.checkpoint_every) {
      continue;
    }
    // Periodic durability point. Retries consume no campaign randomness, so
    // injected storage faults leave the collected-answer stream untouched.
    Status saved;
    for (size_t attempt = 0; attempt < std::max<size_t>(1, options.save_attempts);
         ++attempt) {
      saved = system->SaveCheckpoint(options.checkpoint_path);
      if (saved.ok()) break;
      ++result.save_failures;
    }
    if (!saved.ok()) continue;  // Keep collecting; try again next period.
    ++result.checkpoints;
    answers_at_last_checkpoint = result.answers;

    if (options.crash_every_checkpoints > 0 &&
        result.checkpoints % options.crash_every_checkpoints == 0) {
      // Crash/recover cycle: drop the whole system (losing every lease and
      // all in-memory state) and rebuild it from the checkpoint just saved.
      system = make_system();
      Status recovered = system->LoadCheckpoint(options.checkpoint_path);
      if (!recovered.ok()) return result;  // Unrecoverable; report progress.
      ++result.crashes;
    }
  }

  result.inferred_choices = system->InferredChoices();
  result.completed = result.answers >= budget;
  return result;
}

std::vector<core::Task> TasksWithOneHotDomains(
    const datasets::Dataset& dataset, size_t num_domains) {
  std::vector<core::Task> tasks;
  tasks.reserve(dataset.tasks.size());
  for (const auto& spec : dataset.tasks) {
    core::Task task;
    task.domain_vector.assign(num_domains, 0.0);
    task.domain_vector[spec.true_domain] = 1.0;
    task.num_choices = spec.num_choices();
    tasks.push_back(std::move(task));
  }
  return tasks;
}

}  // namespace docs::crowd
