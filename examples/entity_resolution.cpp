// Entity resolution with DOCS — the workload the paper's introduction
// motivates (CrowdER-style record matching).
//
// We generate record pairs over KB entities: positive pairs are two surface
// variants of the same entity (abbreviation, reordering, noise token),
// negative pairs are two similar-domain entities. Workers judge "same entity
// or not"; domain expertise matters because recognizing that "S. Curry" and
// "Stephen Curry" match requires knowing the sports domain.
//
//   ./build/examples/entity_resolution

#include <iostream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/string_utils.h"
#include "common/table_printer.h"
#include "core/docs_system.h"
#include "crowd/campaign.h"
#include "crowd/worker_pool.h"
#include "kb/synthetic_kb.h"

namespace {

// Produces a surface variant of an entity name: initial for the first word,
// dropped middle word, or appended qualifier.
std::string Variant(const std::string& name, docs::Rng& rng) {
  auto words = docs::Split(name, " ");
  switch (rng.UniformInt(3)) {
    case 0:
      if (words[0].size() > 1) words[0] = words[0].substr(0, 1) + ".";
      break;
    case 1:
      if (words.size() > 2) words.erase(words.begin() + 1);
      break;
    default:
      words.push_back("(record)");
      break;
  }
  return docs::Join(words, " ");
}

}  // namespace

int main() {
  using docs::TablePrinter;
  namespace core = docs::core;
  namespace kb = docs::kb;
  namespace crowd = docs::crowd;
  namespace datasets = docs::datasets;

  const kb::SyntheticKb synthetic = kb::BuildSyntheticKb();
  const auto canon =
      kb::CanonicalDomains::Resolve(synthetic.knowledge_base.taxonomy());
  docs::Rng rng(2026);

  // Build 160 record-pair tasks across four entity types.
  datasets::Dataset dataset;
  dataset.name = "EntityResolution";
  dataset.domain_labels = {"Players", "Films", "Cars", "Countries"};
  dataset.label_to_domain = {canon.sports, canon.entertain, canon.cars,
                             canon.travel};
  const std::vector<const std::vector<std::string>*> pools = {
      &synthetic.pools.nba_players, &synthetic.pools.films,
      &synthetic.pools.cars, &synthetic.pools.countries};
  for (size_t i = 0; i < 160; ++i) {
    const size_t label = i % 4;
    const auto& pool = *pools[label];
    datasets::TaskSpec task;
    task.label = label;
    task.true_domain = dataset.label_to_domain[label];
    const bool positive = rng.Bernoulli(0.5);
    const std::string& a = pool[rng.UniformInt(pool.size())];
    std::string b;
    if (positive) {
      b = Variant(a, rng);
    } else {
      do {
        b = pool[rng.UniformInt(pool.size())];
      } while (b == a);
    }
    task.text = "Do the records \"" + a + "\" and \"" + b +
                "\" refer to the same real-world entity?";
    task.choices = {"same", "different"};
    task.truth = positive ? 0 : 1;
    dataset.tasks.push_back(std::move(task));
  }

  // DOCS pipeline with golden tasks and OTA over a simulated crowd.
  core::DocsSystemOptions options;
  options.golden_count = 12;
  core::DocsSystem system(&synthetic.knowledge_base, options);
  std::vector<core::TaskInput> inputs;
  for (const auto& task : dataset.tasks) {
    inputs.push_back({task.text, task.num_choices()});
  }
  const auto truths = dataset.Truths();
  if (auto status = system.AddTasks(inputs, &truths); !status.ok()) {
    std::cerr << status.ToString() << "\n";
    return 1;
  }

  crowd::WorkerPoolOptions pool_options;
  pool_options.num_workers = 50;
  pool_options.spammer_fraction = 0.2;
  auto workers =
      crowd::MakeWorkerPool(synthetic.knowledge_base.num_domains(),
                            dataset.label_to_domain, pool_options, 4);
  for (size_t w = 0; w < workers.size(); ++w) {
    system.WorkerIndex(workers[w].id);
  }

  crowd::CampaignOptions campaign;
  campaign.total_answers_per_policy = dataset.tasks.size() * 6;
  auto outcomes =
      crowd::RunAssignmentCampaign(dataset, workers, {&system}, campaign);

  size_t correct = 0;
  size_t false_match = 0, missed_match = 0;
  for (size_t i = 0; i < dataset.tasks.size(); ++i) {
    const size_t inferred = outcomes[0].inferred_choices[i];
    if (inferred == dataset.tasks[i].truth) {
      ++correct;
    } else if (inferred == 0) {
      ++false_match;
    } else {
      ++missed_match;
    }
  }
  TablePrinter table({"metric", "value"});
  table.AddRow({"record pairs", std::to_string(dataset.tasks.size())});
  table.AddRow({"answers collected",
                std::to_string(outcomes[0].answers_collected)});
  table.AddRow({"resolution accuracy",
                TablePrinter::Fmt(100.0 * correct / dataset.tasks.size(), 1) +
                    "%"});
  table.AddRow({"false matches", std::to_string(false_match)});
  table.AddRow({"missed matches", std::to_string(missed_match)});
  table.Print(std::cout);
  return 0;
}
