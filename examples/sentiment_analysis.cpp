// Sentiment analysis with DOCS — the second workload the paper's
// introduction motivates (CDAS-style sentiment labeling).
//
// Workers classify short review snippets about films, cars and restaurants
// as positive / negative / neutral. Judging sentiment still benefits from
// domain knowledge ("the acceleration is sluggish" is negative only if you
// know cars), so the tasks carry domain vectors and DOCS routes them to the
// right workers. Compares DOCS truth inference against majority voting on
// the same collected answers.
//
//   ./build/examples/sentiment_analysis

#include <iostream>
#include <string>
#include <vector>

#include "baselines/majority_vote.h"
#include "common/rng.h"
#include "common/table_printer.h"
#include "core/docs_system.h"
#include "crowd/campaign.h"
#include "crowd/worker_pool.h"
#include "kb/synthetic_kb.h"

int main() {
  using docs::TablePrinter;
  namespace core = docs::core;
  namespace kb = docs::kb;
  namespace crowd = docs::crowd;
  namespace datasets = docs::datasets;
  namespace baselines = docs::baselines;

  const kb::SyntheticKb synthetic = kb::BuildSyntheticKb();
  const auto canon =
      kb::CanonicalDomains::Resolve(synthetic.knowledge_base.taxonomy());
  docs::Rng rng(314);

  // Review-snippet templates per sentiment, specialized by domain.
  struct Templates {
    std::vector<std::string> positive;
    std::vector<std::string> negative;
    std::vector<std::string> neutral;
  };
  const Templates film_templates = {
      {"the performance in % was a triumph of the cinema",
       "% deserves every award it got, what a premiere"},
      {"% was a box office flop for a reason, the director lost the plot",
       "i walked out of %, the worst film this year"},
      {"% premiered last week in our cinema",
       "the runtime of % is about two hours"}};
  const Templates car_templates = {
      {"the % has stunning acceleration and the engine purrs",
       "great fuel economy on the %, the transmission is silk"},
      {"the % brakes feel spongy and the engine rattles at speed",
       "terrible mileage from the %, the dealership overcharged us"},
      {"the % comes in a sedan and an suv variant",
       "the % received a new model year refresh"}};
  const Templates food_templates = {
      {"the % was baked to perfection, sweet and rich flavor",
       "best % i have tasted, the recipe is a keeper"},
      {"the % was bland and greasy, flavor of cardboard",
       "avoid the %, it ruined our dinner"},
      {"the % contains about two hundred calories per serving",
       "% is a common breakfast ingredient"}};

  datasets::Dataset dataset;
  dataset.name = "Sentiment";
  dataset.domain_labels = {"Films", "Cars", "Food"};
  dataset.label_to_domain = {canon.entertain, canon.cars, canon.food};
  const std::vector<const Templates*> templates = {
      &film_templates, &car_templates, &food_templates};
  const std::vector<const std::vector<std::string>*> pools = {
      &synthetic.pools.films, &synthetic.pools.cars, &synthetic.pools.foods};

  for (size_t i = 0; i < 240; ++i) {
    const size_t label = i % 3;
    const auto& pool = *pools[label];
    const auto& tmpl = *templates[label];
    datasets::TaskSpec task;
    task.label = label;
    task.true_domain = dataset.label_to_domain[label];
    task.choices = {"positive", "negative", "neutral"};
    task.truth = rng.UniformInt(3);
    const auto& variants = task.truth == 0   ? tmpl.positive
                           : task.truth == 1 ? tmpl.negative
                                             : tmpl.neutral;
    std::string snippet = variants[rng.UniformInt(variants.size())];
    const std::string& entity = pool[rng.UniformInt(pool.size())];
    snippet.replace(snippet.find('%'), 1, entity);
    task.text = "What is the sentiment of this review? \"" + snippet + "\"";
    dataset.tasks.push_back(std::move(task));
  }

  // Run a DOCS campaign.
  core::DocsSystemOptions options;
  options.golden_count = 12;
  core::DocsSystem system(&synthetic.knowledge_base, options);
  std::vector<core::TaskInput> inputs;
  std::vector<size_t> num_choices;
  for (const auto& task : dataset.tasks) {
    inputs.push_back({task.text, task.num_choices()});
    num_choices.push_back(task.num_choices());
  }
  const auto truths = dataset.Truths();
  if (auto status = system.AddTasks(inputs, &truths); !status.ok()) {
    std::cerr << status.ToString() << "\n";
    return 1;
  }

  crowd::WorkerPoolOptions pool_options;
  pool_options.num_workers = 50;
  pool_options.spammer_fraction = 0.25;
  pool_options.constant_answerer_fraction = 0.15;
  pool_options.base_min = 0.45;
  pool_options.base_max = 0.65;
  auto workers =
      crowd::MakeWorkerPool(synthetic.knowledge_base.num_domains(),
                            dataset.label_to_domain, pool_options, 8);
  for (size_t w = 0; w < workers.size(); ++w) system.WorkerIndex(workers[w].id);

  crowd::CampaignOptions campaign;
  campaign.total_answers_per_policy = dataset.tasks.size() * 5;
  auto outcomes =
      crowd::RunAssignmentCampaign(dataset, workers, {&system}, campaign);

  // Majority vote over the same answers for comparison.
  const auto& answers = system.inference().answers();
  auto mv = baselines::MajorityVote(num_choices, answers);

  auto accuracy = [&](const std::vector<size_t>& inferred) {
    size_t correct = 0;
    for (size_t i = 0; i < dataset.tasks.size(); ++i) {
      correct += inferred[i] == dataset.tasks[i].truth;
    }
    return 100.0 * correct / dataset.tasks.size();
  };

  TablePrinter table({"method", "sentiment accuracy"});
  table.AddRow({"DOCS (domain-aware)",
                TablePrinter::Fmt(accuracy(outcomes[0].inferred_choices), 1) +
                    "%"});
  table.AddRow({"Majority vote",
                TablePrinter::Fmt(accuracy(mv), 1) + "%"});
  table.Print(std::cout);

  // Show one learned profile for color.
  const auto& q = system.inference().worker_quality(0).quality;
  std::cout << "\nworker_0 learned profile: films="
            << TablePrinter::Fmt(q[canon.entertain], 2)
            << " cars=" << TablePrinter::Fmt(q[canon.cars], 2)
            << " food=" << TablePrinter::Fmt(q[canon.food], 2) << "\n";
  return 0;
}
