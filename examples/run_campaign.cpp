// Command-line campaign driver: run the full DOCS pipeline (or a baseline
// assignment policy) over a built-in dataset or your own TSV of tasks, with
// optional worker-profile persistence and session checkpointing.
//
//   ./build/examples/run_campaign                         # DOCS on Item
//   ./build/examples/run_campaign --dataset QA --policy askit
//   ./build/examples/run_campaign --tasks mytasks.tsv --golden 10
//       --checkpoint /tmp/session.ckpt --save-workers /tmp/workers.log
//
// Flags:
//   --dataset Item|4D|QA|SFV   built-in dataset (default Item)
//   --tasks <path.tsv>         load tasks from a TSV (see datasets/dataset_io.h)
//   --policy docs|dmax|random|askit   assignment policy (default docs)
//   --workers N                simulated crowd size (default 60)
//   --answers-per-task N       answer budget per task (default 10)
//   --golden N                 golden tasks for worker probing (default 20)
//   --seed N                   RNG seed for the simulated crowd (default 1)
//   --checkpoint <path>        save the DOCS session state at the end
//   --save-workers <path>      persist worker profiles to a WorkerStore log

#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>

#include "baselines/assigners.h"
#include "common/stopwatch.h"
#include "common/table_printer.h"
#include "core/docs_system.h"
#include "crowd/campaign.h"
#include "crowd/worker_pool.h"
#include "datasets/dataset.h"
#include "datasets/dataset_io.h"
#include "kb/synthetic_kb.h"
#include "storage/worker_store.h"

namespace {

struct Flags {
  std::string dataset = "Item";
  std::string tasks_tsv;
  std::string policy = "docs";
  size_t workers = 60;
  size_t answers_per_task = 10;
  size_t golden = 20;
  uint64_t seed = 1;
  std::string checkpoint;
  std::string save_workers;
};

bool ParseFlags(int argc, char** argv, Flags* flags) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto value = [&]() -> std::string {
      return (i + 1 < argc) ? argv[++i] : "";
    };
    if (arg == "--dataset") {
      flags->dataset = value();
    } else if (arg == "--tasks") {
      flags->tasks_tsv = value();
    } else if (arg == "--policy") {
      flags->policy = value();
    } else if (arg == "--workers") {
      flags->workers = std::strtoul(value().c_str(), nullptr, 10);
    } else if (arg == "--answers-per-task") {
      flags->answers_per_task = std::strtoul(value().c_str(), nullptr, 10);
    } else if (arg == "--golden") {
      flags->golden = std::strtoul(value().c_str(), nullptr, 10);
    } else if (arg == "--seed") {
      flags->seed = std::strtoull(value().c_str(), nullptr, 10);
    } else if (arg == "--checkpoint") {
      flags->checkpoint = value();
    } else if (arg == "--save-workers") {
      flags->save_workers = value();
    } else {
      std::cerr << "unknown flag: " << arg << "\n";
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using docs::TablePrinter;
  namespace core = docs::core;
  namespace kb = docs::kb;
  namespace crowd = docs::crowd;
  namespace datasets = docs::datasets;
  namespace baselines = docs::baselines;
  namespace storage = docs::storage;

  Flags flags;
  if (!ParseFlags(argc, argv, &flags)) return 2;

  std::cout << "building knowledge base...\n";
  const kb::SyntheticKb synthetic = kb::BuildSyntheticKb();

  datasets::Dataset dataset;
  if (!flags.tasks_tsv.empty()) {
    auto loaded = datasets::LoadDatasetTsv(flags.tasks_tsv);
    if (!loaded.ok()) {
      std::cerr << loaded.status().ToString() << "\n";
      return 1;
    }
    dataset = std::move(*loaded);
  } else {
    dataset = datasets::MakeDatasetByName(flags.dataset, synthetic);
    if (dataset.tasks.empty()) {
      std::cerr << "unknown dataset '" << flags.dataset
                << "' (expected Item, 4D, QA or SFV)\n";
      return 1;
    }
  }
  std::cout << "dataset: " << dataset.name << " (" << dataset.tasks.size()
            << " tasks)\n";

  crowd::WorkerPoolOptions pool_options;
  pool_options.num_workers = flags.workers;
  pool_options.spammer_fraction = 0.2;
  pool_options.constant_answerer_fraction = 0.1;
  auto workers =
      crowd::MakeWorkerPool(synthetic.knowledge_base.num_domains(),
                            dataset.label_to_domain, pool_options, flags.seed);

  // Build the requested policy.
  std::vector<size_t> num_choices;
  std::vector<core::TaskInput> inputs;
  for (const auto& task : dataset.tasks) {
    num_choices.push_back(task.num_choices());
    inputs.push_back({task.text, task.num_choices()});
  }
  const auto truths = dataset.Truths();

  std::unique_ptr<core::DocsSystem> docs_system;
  std::unique_ptr<baselines::RandomAssigner> random_policy;
  std::unique_ptr<baselines::AskItAssigner> askit_policy;
  core::AssignmentPolicy* policy = nullptr;
  if (flags.policy == "docs" || flags.policy == "dmax") {
    core::DocsSystemOptions options;
    options.golden_count = flags.golden;
    options.max_answers_per_task = flags.answers_per_task;
    if (flags.policy == "dmax") {
      options.selection_rule = core::SelectionRule::kDomainMax;
      options.display_name = "D-Max";
    }
    docs_system = std::make_unique<core::DocsSystem>(
        &synthetic.knowledge_base, options);
    if (auto status = docs_system->AddTasks(inputs, &truths); !status.ok()) {
      std::cerr << status.ToString() << "\n";
      return 1;
    }
    for (const auto& worker : workers) docs_system->WorkerIndex(worker.id);
    policy = docs_system.get();
  } else if (flags.policy == "random") {
    random_policy =
        std::make_unique<baselines::RandomAssigner>(num_choices, flags.seed);
    policy = random_policy.get();
  } else if (flags.policy == "askit") {
    askit_policy = std::make_unique<baselines::AskItAssigner>(num_choices);
    policy = askit_policy.get();
  } else {
    std::cerr << "unknown policy '" << flags.policy
              << "' (expected docs, dmax, random or askit)\n";
    return 1;
  }

  std::cout << "running campaign with policy " << policy->name() << "...\n";
  crowd::CampaignOptions campaign;
  campaign.total_answers_per_policy =
      dataset.tasks.size() * flags.answers_per_task;
  campaign.seed = flags.seed + 1;
  docs::Stopwatch stopwatch;
  auto outcomes =
      crowd::RunAssignmentCampaign(dataset, workers, {policy}, campaign);
  const double elapsed = stopwatch.ElapsedSeconds();
  const auto& outcome = outcomes[0];

  size_t correct = 0;
  for (size_t i = 0; i < dataset.tasks.size(); ++i) {
    correct += outcome.inferred_choices[i] == dataset.tasks[i].truth;
  }
  TablePrinter table({"metric", "value"});
  table.AddRow({"policy", outcome.name});
  table.AddRow({"answers collected", std::to_string(outcome.answers_collected)});
  table.AddRow({"accuracy",
                TablePrinter::Fmt(100.0 * correct / dataset.tasks.size(), 1) +
                    "%"});
  table.AddRow({"wall time", TablePrinter::Fmt(elapsed, 2) + "s"});
  table.AddRow({"worst assignment",
                TablePrinter::Fmt(outcome.worst_assignment_seconds * 1e3, 2) +
                    "ms"});
  table.Print(std::cout);

  if (docs_system != nullptr && !flags.checkpoint.empty()) {
    if (auto status = docs_system->SaveCheckpoint(flags.checkpoint);
        status.ok()) {
      std::cout << "session checkpoint written to " << flags.checkpoint
                << "\n";
    } else {
      std::cerr << status.ToString() << "\n";
    }
  }
  if (docs_system != nullptr && !flags.save_workers.empty()) {
    auto store = storage::WorkerStore::Open(
        flags.save_workers, synthetic.knowledge_base.num_domains());
    if (store.ok()) {
      for (const auto& worker : workers) {
        if (auto saved = docs_system->SaveWorker(worker.id, &*store);
            !saved.ok()) {
          std::cerr << "profile write-back failed: " << saved.ToString()
                    << "\n";
        }
      }
      if (auto compacted = store->Compact(); !compacted.ok()) {
        std::cerr << "compaction failed: " << compacted.ToString() << "\n";
      }
      std::cout << store->size() << " worker profiles persisted to "
                << flags.save_workers << "\n";
    } else {
      std::cerr << store.status().ToString() << "\n";
    }
  }
  return 0;
}
