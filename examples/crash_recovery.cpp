// Network chaos harness: durable exactly-once serving under repeated
// gateway crashes.
//
// The parent process bootstraps a campaign into a recovery directory
// (checkpoint + answer WAL), then serves it from a child gateway process
// that it SIGKILLs and respawns --kills times *while* a pool of
// ResilientCrowdClient worker threads keeps requesting HITs and submitting
// answers through every outage. Each respawned gateway recovers the
// campaign from disk before accepting its first connection.
//
// At the end the parent SIGKILLs the last child too, recovers the campaign
// in-process from the same directory, and verifies the durability contract:
//
//   1. zero lost answers     — every client-acknowledged submission is in
//                              the recovered state;
//   2. zero duplicates       — nothing was applied twice despite retries
//                              resending the same request_id;
//   3. bitwise-equal truth   — a fresh reference system fed the same answer
//                              sequence with no crash converges to a
//                              posterior bitwise identical to the recovered
//                              one.
//
//   ./build/examples/crash_recovery [--kills=N] [--workers=N] [--rounds=N]
//                                   [--checkpoint-every=N] [--dir=PATH]
//
// scripts/ci.sh runs this under ASan as the chaos stage. Internal flag
// --serve turns a process into the gateway child (fork + exec keeps the
// child free of the parent's threads).

#include <netinet/in.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "client/resilient_client.h"
#include "common/rng.h"
#include "common/sync.h"
#include "common/table_printer.h"
#include "core/concurrent_docs_system.h"
#include "core/durable_docs_system.h"
#include "crowd/worker_pool.h"
#include "datasets/dataset.h"
#include "kb/synthetic_kb.h"
#include "server/crowd_gateway.h"

namespace {

namespace core = docs::core;
using docs::Status;

size_t FlagValue(int argc, char** argv, const char* name, size_t fallback) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return static_cast<size_t>(std::atoll(argv[i] + prefix.size()));
    }
  }
  return fallback;
}

std::string StringFlag(int argc, char** argv, const char* name,
                       const std::string& fallback) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::string(argv[i] + prefix.size());
    }
  }
  return fallback;
}

bool HasFlag(int argc, char** argv, const char* name) {
  const std::string flag = std::string("--") + name;
  for (int i = 1; i < argc; ++i) {
    if (flag == argv[i]) return true;
  }
  return false;
}

/// Campaign options shared by the bootstrap, every gateway child, the final
/// recovery, and the reference run — bit-identity requires one config.
core::DocsSystemOptions CampaignOptions() {
  core::DocsSystemOptions options;
  options.golden_count = 8;
  options.lease_duration = 0;  // leases are volatile state; keep them out
  options.reinfer_every = 25;
  return options;
}

uint16_t PickFreePort() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return 0;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  uint16_t port = 0;
  socklen_t len = sizeof(addr);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0 &&
      ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
    port = ntohs(addr.sin_port);
  }
  ::close(fd);
  return port;
}

/// Gateway child: recover the campaign from `dir`, serve on `port` until
/// killed. SO_REUSEADDR in the gateway makes the fixed port reusable across
/// SIGKILL/respawn cycles.
int RunServeChild(const std::string& dir, uint16_t port,
                  size_t checkpoint_every) {
  const docs::kb::SyntheticKb synthetic = docs::kb::BuildSyntheticKb();
  core::ConcurrentDocsSystem system(&synthetic.knowledge_base,
                                    CampaignOptions());
  core::DurableOptions durable_options;
  durable_options.dir = dir;
  durable_options.checkpoint_every = checkpoint_every;
  core::DurableDocsSystem durable(&system, durable_options);
  docs::server::CrowdGatewayOptions gateway_options;
  gateway_options.port = port;
  docs::server::CrowdGateway gateway(&durable, gateway_options);
  Status started = docs::OkStatus();
  for (int attempt = 0; attempt < 100; ++attempt) {
    started = gateway.Start();
    if (started.ok()) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  if (!started.ok()) {
    std::cerr << "child gateway start: " << started.ToString() << "\n";
    return 1;
  }
  for (;;) std::this_thread::sleep_for(std::chrono::seconds(1));
}

pid_t SpawnServeChild(const char* self, const std::string& dir, uint16_t port,
                      size_t checkpoint_every) {
  const std::string dir_arg = "--dir=" + dir;
  const std::string port_arg = "--port=" + std::to_string(port);
  const std::string ckpt_arg =
      "--checkpoint-every=" + std::to_string(checkpoint_every);
  const pid_t pid = ::fork();
  if (pid == 0) {
    ::execl(self, self, "--serve", dir_arg.c_str(), port_arg.c_str(),
            ckpt_arg.c_str(), static_cast<char*>(nullptr));
    _exit(127);  // exec failed
  }
  return pid;
}

void KillAndReap(pid_t pid) {
  if (pid <= 0) return;
  ::kill(pid, SIGKILL);
  int wstatus = 0;
  ::waitpid(pid, &wstatus, 0);
}

struct AckedAnswer {
  std::string worker;
  uint64_t task = 0;
  uint32_t choice = 0;

  bool operator<(const AckedAnswer& other) const {
    return std::tie(worker, task, choice) <
           std::tie(other.worker, other.task, other.choice);
  }
  bool operator==(const AckedAnswer& other) const {
    return worker == other.worker && task == other.task &&
           choice == other.choice;
  }
};

}  // namespace

int main(int argc, char** argv) {
  namespace crowd = docs::crowd;
  namespace datasets = docs::datasets;
  namespace kb = docs::kb;
  using docs::TablePrinter;

  const size_t kills = FlagValue(argc, argv, "kills", 3);
  const size_t num_workers = FlagValue(argc, argv, "workers", 4);
  const size_t rounds = FlagValue(argc, argv, "rounds", 24);
  const size_t checkpoint_every = FlagValue(argc, argv, "checkpoint-every", 32);
  std::string dir = StringFlag(argc, argv, "dir", "");

  if (HasFlag(argc, argv, "serve")) {
    return RunServeChild(
        dir, static_cast<uint16_t>(FlagValue(argc, argv, "port", 0)),
        checkpoint_every);
  }

  if (dir.empty()) {
    char tmpl[] = "/tmp/docs_crash_XXXXXX";
    if (::mkdtemp(tmpl) == nullptr) {
      std::cerr << "mkdtemp failed\n";
      return 1;
    }
    dir = tmpl;
  }

  // 1. Bootstrap the campaign into the recovery directory: tasks ingested,
  // initial checkpoint written. Every later process (gateway children, the
  // final verification) starts from this directory alone.
  const kb::SyntheticKb synthetic = kb::BuildSyntheticKb();
  const datasets::Dataset dataset = datasets::MakeItemDataset(synthetic);
  std::vector<core::TaskInput> inputs;
  for (const auto& task : dataset.tasks) {
    inputs.push_back({task.text, task.num_choices()});
  }
  const auto truths = dataset.Truths();
  {
    core::ConcurrentDocsSystem bootstrap(&synthetic.knowledge_base,
                                         CampaignOptions());
    if (Status status = bootstrap.AddTasks(inputs, &truths); !status.ok()) {
      std::cerr << "AddTasks: " << status.ToString() << "\n";
      return 1;
    }
    core::DurableOptions durable_options;
    durable_options.dir = dir;
    core::DurableDocsSystem durable(&bootstrap, durable_options);
    if (Status status = durable.Recover(); !status.ok()) {
      std::cerr << "bootstrap recover: " << status.ToString() << "\n";
      return 1;
    }
    if (Status status = durable.Checkpoint(); !status.ok()) {
      std::cerr << "bootstrap checkpoint: " << status.ToString() << "\n";
      return 1;
    }
  }

  const uint16_t port = PickFreePort();
  if (port == 0) {
    std::cerr << "no free port\n";
    return 1;
  }
  std::cout << "campaign dir: " << dir << "   port: " << port
            << "   kills: " << kills << "\n";

  pid_t child = SpawnServeChild(argv[0], dir, port, checkpoint_every);
  if (child < 0) {
    std::cerr << "fork failed\n";
    return 1;
  }

  // 2. The crowd: worker threads that ride through every outage. Every
  // OK-acknowledged submission is recorded; the durability contract is that
  // this record and the recovered state match exactly.
  crowd::WorkerPoolOptions pool_options;
  pool_options.num_workers = num_workers;
  const auto pool = crowd::MakeWorkerPool(
      synthetic.knowledge_base.num_domains(), dataset.label_to_domain,
      pool_options, 42);
  docs::Mutex acked_mutex;
  std::vector<AckedAnswer> acked;
  std::atomic<size_t> acked_count{0};
  std::atomic<size_t> failed_ops{0};
  std::atomic<bool> clients_done{false};
  std::vector<docs::client::ResilientClientStats> client_stats(num_workers);

  auto play = [&](size_t w) {
    docs::client::ResilientClientOptions options;
    options.port = port;
    options.socket.recv_timeout_ms = 2000;
    options.socket.send_timeout_ms = 2000;
    options.max_attempts = 400;
    options.op_deadline_ms = 120000;
    options.initial_backoff_ms = 2;
    options.max_backoff_ms = 100;
    options.nonce = 0xC0FFEE00 + w;
    docs::client::ResilientCrowdClient client(options);
    docs::Rng rng(900 + w);
    for (size_t round = 0; round < rounds; ++round) {
      std::vector<uint64_t> hit;
      if (!client.RequestTasks(pool[w].id, 3, &hit).ok()) {
        failed_ops.fetch_add(1);
        break;
      }
      if (hit.empty()) break;  // pool drained for this worker
      for (uint64_t task : hit) {
        const auto& spec = dataset.tasks[task];
        const uint32_t choice = static_cast<uint32_t>(crowd::GenerateAnswer(
            pool[w], spec.true_domain, spec.truth, spec.num_choices(), rng));
        const Status submitted =
            client.SubmitAnswer(pool[w].id, task, choice);
        if (submitted.ok()) {
          docs::MutexLock lock(&acked_mutex);
          acked.push_back({pool[w].id, task, choice});
          acked_count.fetch_add(1);
        } else {
          failed_ops.fetch_add(1);
        }
      }
    }
    client_stats[w] = client.stats();
  };

  // 3. The killer: SIGKILL the gateway every ~30 acknowledged answers (so
  // each crash has fresh WAL tail to replay) and respawn it to recover.
  std::thread killer([&] {
    for (size_t k = 1; k <= kills; ++k) {
      const size_t mark = k * 30;
      while (acked_count.load() < mark &&
             !clients_done.load(std::memory_order_acquire)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      }
      KillAndReap(child);
      child = SpawnServeChild(argv[0], dir, port, checkpoint_every);
    }
  });

  std::vector<std::thread> threads;
  for (size_t w = 0; w < num_workers; ++w) threads.emplace_back(play, w);
  for (auto& thread : threads) thread.join();
  clients_done.store(true, std::memory_order_release);
  killer.join();
  // The final crash: no drain, no flush — recovery below starts from
  // whatever the WAL and checkpoint physically hold.
  KillAndReap(child);

  // 4. Recover in-process and verify the contract.
  core::ConcurrentDocsSystem recovered_system(&synthetic.knowledge_base,
                                              CampaignOptions());
  core::DurableOptions recover_options;
  recover_options.dir = dir;
  core::DurableDocsSystem recovered(&recovered_system, recover_options);
  if (Status status = recovered.Recover(); !status.ok()) {
    std::cerr << "final recover: " << status.ToString() << "\n";
    return 1;
  }
  const std::vector<std::string> worker_ids = recovered_system.WorkerIds();
  std::vector<AckedAnswer> replayed =
      recovered_system.WithLocked([&](core::DocsSystem& system) {
        std::vector<AckedAnswer> out;
        for (const core::Answer& answer : system.inference().answers()) {
          out.push_back({worker_ids[answer.worker], answer.task,
                         static_cast<uint32_t>(answer.choice)});
        }
        return out;
      });

  // Zero lost, zero duplicated: the acked record and the recovered answers
  // are the same multiset.
  std::vector<AckedAnswer> acked_sorted = acked;
  std::vector<AckedAnswer> replayed_sorted = replayed;
  std::sort(acked_sorted.begin(), acked_sorted.end());
  std::sort(replayed_sorted.begin(), replayed_sorted.end());
  const bool exact = acked_sorted == replayed_sorted;

  // Bitwise-equal posterior: a reference system fed the identical sequence
  // (same worker registration order, same answers, no crash in between)
  // must land on the identical truth distribution.
  core::ConcurrentDocsSystem reference(&synthetic.knowledge_base,
                                       CampaignOptions());
  if (Status status = reference.AddTasks(inputs, &truths); !status.ok()) {
    std::cerr << "reference AddTasks: " << status.ToString() << "\n";
    return 1;
  }
  reference.WithLocked([&](core::DocsSystem& system) {
    for (const std::string& id : worker_ids) (void)system.WorkerIndex(id);
    return 0;
  });
  bool reference_ok = true;
  for (const AckedAnswer& answer : replayed) {
    Status applied =
        reference.SubmitAnswer(answer.worker, answer.task, answer.choice);
    if (!applied.ok()) {
      std::cerr << "reference replay: " << applied.ToString() << "\n";
      reference_ok = false;
      break;
    }
  }
  recovered_system.RunFullInference();
  reference.RunFullInference();
  bool bitwise_equal = reference_ok;
  if (reference_ok) {
    const auto truth_of = [](core::ConcurrentDocsSystem& system) {
      return system.WithLocked([](core::DocsSystem& inner) {
        std::vector<std::vector<double>> all;
        for (size_t t = 0; t < inner.tasks().size(); ++t) {
          all.push_back(inner.inference().task_truth(t));
        }
        return all;
      });
    };
    const auto recovered_truth = truth_of(recovered_system);
    const auto reference_truth = truth_of(reference);
    for (size_t t = 0; bitwise_equal && t < recovered_truth.size(); ++t) {
      bitwise_equal =
          recovered_truth[t].size() == reference_truth[t].size() &&
          std::memcmp(recovered_truth[t].data(), reference_truth[t].data(),
                      recovered_truth[t].size() * sizeof(double)) == 0;
    }
    bitwise_equal = bitwise_equal && recovered_system.InferredChoices() ==
                                         reference.InferredChoices();
  }

  docs::client::ResilientClientStats totals;
  for (const auto& stats : client_stats) {
    totals.retries += stats.retries;
    totals.reconnects += stats.reconnects;
    totals.timeouts += stats.timeouts;
    totals.duplicate_acks += stats.duplicate_acks;
  }
  const core::DurableStats durable_stats = recovered.stats();

  TablePrinter table({"metric", "value"});
  table.AddRow({"gateway kills", std::to_string(kills)});
  table.AddRow({"answers acked", std::to_string(acked.size())});
  table.AddRow({"answers recovered", std::to_string(replayed.size())});
  table.AddRow({"client retries", std::to_string(totals.retries)});
  table.AddRow({"client reconnects", std::to_string(totals.reconnects)});
  table.AddRow({"client timeouts", std::to_string(totals.timeouts)});
  table.AddRow({"duplicate acks", std::to_string(totals.duplicate_acks)});
  table.AddRow({"failed ops", std::to_string(failed_ops.load())});
  table.AddRow({"wal records at recovery",
                std::to_string(durable_stats.wal_records)});
  table.AddRow({"answers replayed from wal",
                std::to_string(durable_stats.answers_recovered)});
  table.Print(std::cout);

  bool pass = true;
  if (acked.empty()) {
    std::cerr << "FAIL: no answers were acknowledged\n";
    pass = false;
  }
  if (!exact) {
    std::cerr << "FAIL: acked and recovered answer sets differ ("
              << acked_sorted.size() << " acked vs " << replayed_sorted.size()
              << " recovered)\n";
    pass = false;
  }
  if (!bitwise_equal) {
    std::cerr << "FAIL: recovered posterior differs from the uninterrupted "
                 "reference\n";
    pass = false;
  }
  if (pass) {
    std::cout << "\nexactly-once verified: zero lost, zero duplicated, "
                 "posterior bitwise-equal across "
              << kills << " crash/recover cycles\n";
    // Success: clean up the scratch directory.
    std::remove((dir + "/state.ckpt").c_str());
    std::remove((dir + "/answers.wal").c_str());
    ::rmdir(dir.c_str());
  } else {
    std::cerr << "recovery directory kept for inspection: " << dir << "\n";
  }
  return pass ? 0 : 1;
}
