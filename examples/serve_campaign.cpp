// Networked campaign demo: the full DOCS serving loop over real TCP.
//
// Starts a CrowdGateway on an ephemeral loopback port in front of a
// ConcurrentDocsSystem loaded with the synthetic item dataset, then plays a
// pool of simulated AMT workers as genuine network clients — each worker is
// one CrowdClient on its own thread issuing RequestTasks/SubmitAnswer round
// trips, with a fraction of HITs abandoned so the gateway's periodic lease
// sweep has real work. Prints the wire-level stats and the inference
// accuracy at the end, then shuts the gateway down gracefully.
//
//   ./build/examples/serve_campaign [--workers=N] [--rounds=N]
//                                   [--reactors=N]
//
// scripts/ci.sh runs this under ASan as the gateway smoke stage: server up,
// client round trips, clean shutdown — any leak, race-adjacent crash, or
// hung socket fails CI.

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "client/crowd_client.h"
#include "common/rng.h"
#include "common/table_printer.h"
#include "core/concurrent_docs_system.h"
#include "crowd/worker_pool.h"
#include "datasets/dataset.h"
#include "kb/synthetic_kb.h"
#include "net/wire.h"
#include "server/crowd_gateway.h"

namespace {

size_t FlagValue(int argc, char** argv, const char* name, size_t fallback) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return static_cast<size_t>(std::atoll(argv[i] + prefix.size()));
    }
  }
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  namespace core = docs::core;
  namespace crowd = docs::crowd;
  namespace datasets = docs::datasets;
  namespace kb = docs::kb;
  using docs::Status;
  using docs::TablePrinter;

  const size_t num_workers = FlagValue(argc, argv, "workers", 6);
  const size_t rounds = FlagValue(argc, argv, "rounds", 8);
  const size_t reactors = FlagValue(argc, argv, "reactors", 1);

  // 1. The serving system: KB, campaign tasks, thread-safe facade.
  const kb::SyntheticKb synthetic = kb::BuildSyntheticKb();
  const datasets::Dataset dataset = datasets::MakeItemDataset(synthetic);
  core::DocsSystemOptions options;
  options.golden_count = 8;
  options.lease_duration = 6;
  options.reinfer_every = 50;
  core::ConcurrentDocsSystem system(&synthetic.knowledge_base, options);
  std::vector<core::TaskInput> inputs;
  for (const auto& task : dataset.tasks) {
    inputs.push_back({task.text, task.num_choices()});
  }
  const auto truths = dataset.Truths();
  if (Status status = system.AddTasks(inputs, &truths); !status.ok()) {
    std::cerr << "AddTasks: " << status.ToString() << "\n";
    return 1;
  }

  // 2. The gateway on an ephemeral loopback port, sweeping leases itself.
  docs::server::CrowdGatewayOptions gateway_options;
  gateway_options.lease_expiry_interval_ms = 20;
  gateway_options.num_reactors = reactors;
  docs::server::CrowdGateway gateway(&system, gateway_options);
  if (Status status = gateway.Start(); !status.ok()) {
    std::cerr << "gateway start: " << status.ToString() << "\n";
    return 1;
  }
  std::cout << "gateway up on 127.0.0.1:" << gateway.port() << " ("
            << reactors << " reactor" << (reactors == 1 ? "" : "s")
            << ")\n";

  // 3. Simulated workers as real network clients, one thread each.
  crowd::WorkerPoolOptions pool_options;
  pool_options.num_workers = num_workers;
  const auto workers = crowd::MakeWorkerPool(
      synthetic.knowledge_base.num_domains(), dataset.label_to_domain,
      pool_options, 42);
  std::atomic<size_t> answers{0};
  std::atomic<size_t> abandoned{0};
  std::atomic<size_t> transport_errors{0};
  auto play = [&](size_t w) {
    docs::client::CrowdClientOptions client_options;
    client_options.recv_timeout_ms = 5000;
    docs::client::CrowdClient conn(client_options);
    if (!conn.Connect("127.0.0.1", gateway.port()).ok()) {
      transport_errors.fetch_add(1);
      return;
    }
    docs::Rng rng(900 + w);
    for (size_t round = 0; round < rounds; ++round) {
      std::vector<uint64_t> hit;
      if (!conn.RequestTasks(workers[w].id, 4, &hit).ok()) {
        transport_errors.fetch_add(1);
        return;
      }
      if (hit.empty()) return;
      for (uint64_t task : hit) {
        // One in six grants is abandoned: the worker walks away and the
        // gateway's periodic sweep returns the task to the pool.
        if (rng.UniformInt(6) == 0) {
          abandoned.fetch_add(1);
          continue;
        }
        const auto& spec = dataset.tasks[task];
        const Status submitted = conn.SubmitAnswer(
            workers[w].id, task,
            static_cast<uint32_t>(crowd::GenerateAnswer(
                workers[w], spec.true_domain, spec.truth, spec.num_choices(),
                rng)));
        if (submitted.ok()) {
          answers.fetch_add(1);
        } else {
          transport_errors.fetch_add(1);
        }
      }
    }
  };
  std::vector<std::thread> threads;
  for (size_t w = 0; w < workers.size(); ++w) threads.emplace_back(play, w);
  for (auto& thread : threads) thread.join();

  // 4. Wire-level stats plus the inference result behind the gateway.
  docs::client::CrowdClient observer;
  docs::net::StatsResp stats;
  if (!observer.Connect("127.0.0.1", gateway.port()).ok() ||
      !observer.Stats(&stats).ok()) {
    std::cerr << "stats round trip failed\n";
    return 1;
  }
  const auto inferred = system.InferredChoices();
  size_t correct = 0;
  for (size_t i = 0; i < truths.size(); ++i) correct += inferred[i] == truths[i];
  const docs::server::GatewayStats gw = gateway.stats();

  TablePrinter table({"metric", "value"});
  table.AddRow({"tasks", std::to_string(stats.num_tasks)});
  table.AddRow({"answers", std::to_string(stats.num_answers)});
  table.AddRow({"abandoned grants", std::to_string(abandoned.load())});
  table.AddRow({"leases swept", std::to_string(gw.leases_expired)});
  table.AddRow({"outstanding leases", std::to_string(stats.outstanding_leases)});
  table.AddRow({"wire requests served", std::to_string(stats.requests_served)});
  table.AddRow({"connections", std::to_string(gw.connections_accepted)});
  table.AddRow({"accuracy",
                TablePrinter::Fmt(static_cast<double>(correct) /
                                      static_cast<double>(truths.size()),
                                  3)});
  table.Print(std::cout);

  gateway.Stop();
  std::cout << "gateway drained and stopped\n";
  if (transport_errors.load() > 0) {
    std::cerr << transport_errors.load() << " transport error(s)\n";
    return 1;
  }
  return answers.load() > 0 ? 0 : 1;
}
