// Full question-answering campaign with worker persistence.
//
// Session 1 runs a DOCS campaign over one half of the QA dataset and saves
// every worker's learned (q, u) statistics into the embedded WorkerStore.
// Session 2 (a new requester, the other half of the tasks) reloads returning
// workers — they skip the golden phase and keep their domain profiles, as
// Section 4.2's maintenance policy (Theorem 1) prescribes.
//
//   ./build/examples/qa_campaign

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "common/table_printer.h"
#include "core/docs_system.h"
#include "crowd/campaign.h"
#include "crowd/worker_pool.h"
#include "datasets/dataset.h"
#include "kb/synthetic_kb.h"
#include "storage/worker_store.h"

namespace {

double Accuracy(const std::vector<size_t>& inferred,
                const std::vector<size_t>& truths) {
  size_t correct = 0;
  for (size_t i = 0; i < truths.size(); ++i) correct += inferred[i] == truths[i];
  return 100.0 * correct / truths.size();
}

docs::datasets::Dataset Slice(const docs::datasets::Dataset& dataset,
                              size_t begin, size_t end) {
  docs::datasets::Dataset out;
  out.name = dataset.name;
  out.domain_labels = dataset.domain_labels;
  out.label_to_domain = dataset.label_to_domain;
  out.tasks.assign(dataset.tasks.begin() + begin, dataset.tasks.begin() + end);
  return out;
}

}  // namespace

int main() {
  using docs::TablePrinter;
  namespace core = docs::core;
  namespace kb = docs::kb;
  namespace crowd = docs::crowd;
  namespace storage = docs::storage;

  const kb::SyntheticKb synthetic = kb::BuildSyntheticKb();
  auto full = docs::datasets::MakeQaDataset(synthetic, 400);
  auto first_half = Slice(full, 0, 200);
  auto second_half = Slice(full, 200, 400);

  crowd::WorkerPoolOptions pool_options;
  pool_options.num_workers = 70;
  auto workers =
      crowd::MakeWorkerPool(synthetic.knowledge_base.num_domains(),
                            full.label_to_domain, pool_options, 12);

  char store_template[] = "/tmp/docs_qa_campaign_XXXXXX";
  const int store_fd = mkstemp(store_template);
  if (store_fd >= 0) close(store_fd);
  const std::string store_path = store_template;
  auto store = storage::WorkerStore::Open(
      store_path, synthetic.knowledge_base.num_domains());
  if (!store.ok()) {
    std::cerr << store.status().ToString() << "\n";
    return 1;
  }

  auto run_session = [&](const docs::datasets::Dataset& dataset,
                         bool load_returning) {
    core::DocsSystemOptions options;
    options.golden_count = 16;
    core::DocsSystem system(&synthetic.knowledge_base, options);
    std::vector<core::TaskInput> inputs;
    for (const auto& task : dataset.tasks) {
      inputs.push_back({task.text, task.num_choices()});
    }
    const auto truths = dataset.Truths();
    if (auto status = system.AddTasks(inputs, &truths); !status.ok()) {
      std::cerr << status.ToString() << "\n";
      std::exit(1);
    }
    size_t returning = 0;
    for (const auto& worker : workers) {
      if (load_returning && system.LoadWorker(worker.id, *store).ok()) {
        ++returning;
      } else {
        system.WorkerIndex(worker.id);
      }
    }
    crowd::CampaignOptions campaign;
    campaign.total_answers_per_policy = dataset.tasks.size() * 8;
    auto outcomes =
        crowd::RunAssignmentCampaign(dataset, workers, {&system}, campaign);
    // Persist everyone for the next requester.
    for (const auto& worker : workers) {
      if (auto status = system.SaveWorker(worker.id, &*store); !status.ok()) {
        std::cerr << "profile write-back failed: " << status.ToString()
                  << "\n";
      }
    }
    struct SessionResult {
      double accuracy;
      size_t returning;
      size_t answers;
    };
    return SessionResult{Accuracy(outcomes[0].inferred_choices,
                                  dataset.Truths()),
                         returning, outcomes[0].answers_collected};
  };

  std::cout << "Session 1 (fresh workers, first 200 QA tasks)...\n";
  auto first = run_session(first_half, /*load_returning=*/false);
  if (auto status = store->Compact(); !status.ok()) {
    std::cerr << status.ToString() << "\n";
  }
  std::cout << "Session 2 (returning workers, next 200 QA tasks)...\n";
  auto second = run_session(second_half, /*load_returning=*/true);

  TablePrinter table(
      {"session", "returning workers", "answers", "accuracy"});
  table.AddRow({"1", std::to_string(first.returning),
                std::to_string(first.answers),
                TablePrinter::Fmt(first.accuracy, 1) + "%"});
  table.AddRow({"2", std::to_string(second.returning),
                std::to_string(second.answers),
                TablePrinter::Fmt(second.accuracy, 1) + "%"});
  table.Print(std::cout);
  std::cout << "\nworker store: " << store->size() << " profiles at "
            << store_path << " (" << store->log_records()
            << " log records)\n";
  std::cout << "Returning workers skip the golden phase in session 2 and "
               "start with their Theorem-1-merged profiles.\n";
  std::remove(store_path.c_str());
  return 0;
}
