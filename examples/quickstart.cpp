// Quickstart: the smallest end-to-end DOCS run, recreating the paper's
// Table 1 scenario.
//
// Builds the synthetic knowledge base, submits five multiple-choice tasks,
// loads three returning workers' domain profiles from the embedded
// WorkerStore (a sports fan, a movie buff, and a mediocre generalist), lets
// them answer, and prints the inferred truths and updated profiles. As in
// Section 4.1's running example, the sports fan's minority answer wins on
// the sports task because the task's domain vector says it is a sports task
// and she is the sports expert.
//
//   ./build/examples/quickstart

#include <cstdlib>
#include <iostream>
#include <vector>

#include "common/table_printer.h"
#include "core/docs_system.h"
#include "kb/synthetic_kb.h"
#include "storage/worker_store.h"

int main() {
  using docs::TablePrinter;
  namespace core = docs::core;
  namespace kb = docs::kb;
  namespace storage = docs::storage;

  // 1. The knowledge base (stands in for Freebase/Wikipedia).
  const kb::SyntheticKb synthetic = kb::BuildSyntheticKb();
  const size_t m = synthetic.knowledge_base.num_domains();
  const auto canon =
      kb::CanonicalDomains::Resolve(synthetic.knowledge_base.taxonomy());

  // 2. A requester submits tasks (text + number of choices).
  struct Spec {
    const char* text;
    std::vector<const char*> choices;
    size_t truth;
  };
  const std::vector<Spec> specs = {
      {"Does Michael Jordan win more NBA championships than Kobe Bryant?",
       {"yes", "no"}, 0},
      {"Which player wins more NBA championships, Steve Nash or Tim Duncan?",
       {"Steve Nash", "Tim Duncan"}, 1},
      {"Did Leonardo DiCaprio star in Titanic?", {"yes", "no"}, 0},
      {"Who is the lead actor of The Revenant, Tom Hanks or "
       "Leonardo DiCaprio?", {"Tom Hanks", "Leonardo DiCaprio"}, 1},
      {"Is Mount Everest taller than K2?", {"yes", "no"}, 0},
  };

  core::DocsSystemOptions options;
  options.golden_count = 0;  // 5 tasks are too few for a golden phase
  core::DocsSystem system(&synthetic.knowledge_base, options);
  std::vector<core::TaskInput> inputs;
  for (const auto& spec : specs) {
    inputs.push_back({spec.text, spec.choices.size()});
  }
  if (auto status = system.AddTasks(inputs); !status.ok()) {
    std::cerr << "AddTasks failed: " << status.ToString() << "\n";
    return 1;
  }

  // 3. Show what DVE extracted from the text.
  std::cout << "DVE domain vectors (top domain per task):\n";
  for (size_t i = 0; i < specs.size(); ++i) {
    const auto& r = system.tasks()[i].domain_vector;
    size_t best = 0;
    for (size_t d = 1; d < r.size(); ++d) {
      if (r[d] > r[best]) best = d;
    }
    std::cout << "  task " << i << ": "
              << synthetic.knowledge_base.taxonomy().name(best) << " ("
              << TablePrinter::Fmt(r[best], 2) << ")  --  " << specs[i].text
              << "\n";
  }

  // 4. Three returning workers with known profiles (learned in earlier
  //    campaigns and persisted in the WorkerStore; cf. Theorem 1).
  auto store = storage::WorkerStore::InMemory(m);
  auto put_profile = [&](const char* id, double sports, double entertain,
                         double science) {
    storage::WorkerQualityRecord record;
    record.quality.assign(m, 0.6);
    record.quality[canon.sports] = sports;
    record.quality[canon.entertain] = entertain;
    record.quality[canon.science] = science;
    record.weight.assign(m, 30.0);  // well-established profiles
    if (auto status = store.Put(id, record); !status.ok()) {
      std::cerr << "profile write failed: " << status.ToString() << "\n";
      std::exit(1);
    }
  };
  // The sports fan also knows her mountains (an outdoorsy type).
  put_profile("sports-fan", 0.93, 0.55, 0.88);
  put_profile("movie-buff", 0.55, 0.93, 0.55);
  put_profile("generalist", 0.52, 0.52, 0.52);
  for (const char* id : {"sports-fan", "movie-buff", "generalist"}) {
    if (auto status = system.LoadWorker(id, store); !status.ok()) {
      std::cerr << status.ToString() << "\n";
      return 1;
    }
  }
  const size_t sports_fan = system.WorkerIndex("sports-fan");
  const size_t movie_buff = system.WorkerIndex("movie-buff");
  const size_t generalist = system.WorkerIndex("generalist");

  // 5. Answers: the sports fan is right on sports tasks, the movie buff on
  //    film tasks, the generalist sides with the wrong answer — so on every
  //    task the *majority* is wrong in its own domain, as in Table 1.
  auto wrong = [&](size_t i) { return 1 - specs[i].truth; };
  auto is_sports = [](size_t i) { return i == 0 || i == 1 || i == 4; };
  for (size_t i = 0; i < specs.size(); ++i) {
    system.OnAnswer(sports_fan, i, is_sports(i) ? specs[i].truth : wrong(i));
    system.OnAnswer(movie_buff, i, is_sports(i) ? wrong(i) : specs[i].truth);
    system.OnAnswer(generalist, i, wrong(i));
  }

  // 6. Inferred truths: the domain expert's minority vote should win.
  std::cout << "\nInferred truths (each task has a 2-vs-1 wrong majority):\n";
  auto inferred = system.InferredChoices();
  size_t correct = 0;
  for (size_t i = 0; i < specs.size(); ++i) {
    const bool ok = inferred[i] == specs[i].truth;
    correct += ok;
    std::cout << "  task " << i << ": \"" << specs[i].choices[inferred[i]]
              << "\" " << (ok ? "(correct)" : "(WRONG)") << "\n";
  }
  std::cout << "accuracy: " << correct << "/" << specs.size()
            << "  (majority voting would score 0/5)\n";

  // 7. Updated worker profiles, persisted back for the next requester.
  std::cout << "\nUpdated worker quality (Sports / Entertain):\n";
  for (auto [name, worker] :
       {std::pair<const char*, size_t>{"sports-fan", sports_fan},
        {"movie-buff", movie_buff},
        {"generalist", generalist}}) {
    const auto& q = system.inference().worker_quality(worker).quality;
    std::cout << "  " << name
              << ": sports=" << TablePrinter::Fmt(q[canon.sports], 2)
              << " entertain=" << TablePrinter::Fmt(q[canon.entertain], 2)
              << "\n";
    if (auto status = system.SaveWorker(name, &store); !status.ok()) {
      std::cerr << "profile write-back failed: " << status.ToString() << "\n";
      return 1;
    }
  }
  std::cout << "\n" << store.size() << " profiles persisted ("
            << store.log_records() << " log records)\n";
  return 0;
}
