// Photo tagging with DOCS — the paper's running motivation: a worker who is
// a basketball fan labels a photo of Stephen Curry better than one of
// Leonardo DiCaprio, so tasks should go to matching domain experts.
//
// Each task shows a "photo" of a KB entity and asks the worker to select the
// best label among four candidates drawn from the same pool. The example
// contrasts DOCS's OTA against random assignment under the same budget.
//
//   ./build/examples/photo_tagging

#include <iostream>
#include <vector>

#include "baselines/assigners.h"
#include "common/rng.h"
#include "common/table_printer.h"
#include "core/docs_system.h"
#include "crowd/campaign.h"
#include "crowd/worker_pool.h"
#include "kb/synthetic_kb.h"

int main() {
  using docs::TablePrinter;
  namespace core = docs::core;
  namespace kb = docs::kb;
  namespace crowd = docs::crowd;
  namespace datasets = docs::datasets;
  namespace baselines = docs::baselines;

  const kb::SyntheticKb synthetic = kb::BuildSyntheticKb();
  const auto canon =
      kb::CanonicalDomains::Resolve(synthetic.knowledge_base.taxonomy());
  docs::Rng rng(99);

  // 240 photo-labeling tasks over players, actors and mountains.
  datasets::Dataset dataset;
  dataset.name = "PhotoTagging";
  dataset.domain_labels = {"Players", "Actors", "Mountains"};
  dataset.label_to_domain = {canon.sports, canon.entertain, canon.science};
  const std::vector<const std::vector<std::string>*> pools = {
      &synthetic.pools.nba_players, &synthetic.pools.actors,
      &synthetic.pools.mountains};
  for (size_t i = 0; i < 240; ++i) {
    const size_t label = i % 3;
    const auto& pool = *pools[label];
    datasets::TaskSpec task;
    task.label = label;
    task.true_domain = dataset.label_to_domain[label];
    // The photo's subject plus three distractor labels.
    std::vector<size_t> order(pool.size());
    for (size_t j = 0; j < pool.size(); ++j) order[j] = j;
    rng.Shuffle(order);
    for (size_t c = 0; c < 4; ++c) task.choices.push_back(pool[order[c]]);
    task.truth = rng.UniformInt(4);
    task.text = "Select the label that best describes this photo of " +
                task.choices[task.truth] + ".";
    dataset.tasks.push_back(std::move(task));
  }

  // Simulated crowd with strong domain specialists.
  crowd::WorkerPoolOptions pool_options;
  pool_options.num_workers = 60;
  pool_options.spammer_fraction = 0.15;
  auto workers =
      crowd::MakeWorkerPool(synthetic.knowledge_base.num_domains(),
                            dataset.label_to_domain, pool_options, 5);

  // DOCS vs random Baseline under the same answer budget.
  core::DocsSystemOptions options;
  options.golden_count = 9;
  core::DocsSystem system(&synthetic.knowledge_base, options);
  std::vector<core::TaskInput> inputs;
  std::vector<size_t> num_choices;
  for (const auto& task : dataset.tasks) {
    inputs.push_back({task.text, task.num_choices()});
    num_choices.push_back(task.num_choices());
  }
  const auto truths = dataset.Truths();
  if (auto status = system.AddTasks(inputs, &truths); !status.ok()) {
    std::cerr << status.ToString() << "\n";
    return 1;
  }
  for (size_t w = 0; w < workers.size(); ++w) system.WorkerIndex(workers[w].id);
  baselines::RandomAssigner baseline(num_choices, 6);

  crowd::CampaignOptions campaign;
  campaign.total_answers_per_policy = dataset.tasks.size() * 5;
  auto outcomes = crowd::RunAssignmentCampaign(dataset, workers,
                                               {&system, &baseline}, campaign);

  auto accuracy = [&](const std::vector<size_t>& inferred) {
    size_t correct = 0;
    for (size_t i = 0; i < dataset.tasks.size(); ++i) {
      correct += inferred[i] == dataset.tasks[i].truth;
    }
    return 100.0 * correct / dataset.tasks.size();
  };

  TablePrinter table({"method", "answers", "label accuracy"});
  for (const auto& outcome : outcomes) {
    table.AddRow({outcome.name, std::to_string(outcome.answers_collected),
                  TablePrinter::Fmt(accuracy(outcome.inferred_choices), 1) +
                      "%"});
  }
  table.Print(std::cout);
  std::cout << "\nDomain-aware assignment routes each photo to workers who "
               "know its domain, so DOCS should match or beat the random "
               "baseline at equal budget.\n";
  return 0;
}
