// Reproduces Figure 3: domain-detection accuracy of IC (LDA), FC
// (TwitterLDA) and DOCS (KB-based DVE) on the four datasets — per-domain
// accuracies (Fig. 3(a-d)) and the overall accuracy (Fig. 3(e)).
//
// Protocol (Section 6.2): the latent models get m' = m'' = 4 topics (the
// true number, to favor them) and their latent topics are mapped to the true
// domains by the best of all 24 permutations — the automated analogue of the
// paper's manual mapping. DOCS uses its 26 explicit domains and a task is
// detected correctly when the argmax domain equals the label's canonical
// domain.

#include <algorithm>
#include <iostream>
#include <numeric>

#include "bench_common.h"
#include "common/math_utils.h"
#include "common/table_printer.h"
#include "core/domain_vector.h"
#include "topicmodel/corpus.h"
#include "topicmodel/lda.h"
#include "topicmodel/twitter_lda.h"

namespace docs {
namespace {

struct DetectionResult {
  std::vector<double> per_domain_accuracy;  // per dataset label
  double overall = 0.0;
};

DetectionResult ScoreAssignments(const datasets::Dataset& dataset,
                                 const std::vector<size_t>& detected_label) {
  DetectionResult result;
  const size_t num_labels = dataset.domain_labels.size();
  std::vector<size_t> correct(num_labels, 0), total(num_labels, 0);
  for (size_t i = 0; i < dataset.tasks.size(); ++i) {
    const size_t label = dataset.tasks[i].label;
    ++total[label];
    if (detected_label[i] == label) ++correct[label];
  }
  size_t all_correct = 0;
  for (size_t label = 0; label < num_labels; ++label) {
    result.per_domain_accuracy.push_back(
        total[label] > 0
            ? static_cast<double>(correct[label]) / total[label]
            : 0.0);
    all_correct += correct[label];
  }
  result.overall = static_cast<double>(all_correct) / dataset.tasks.size();
  return result;
}

// Maps latent topic ids to dataset labels with the accuracy-maximizing
// permutation (4! = 24 cases).
DetectionResult ScoreLatentTopics(const datasets::Dataset& dataset,
                                  const std::vector<size_t>& topic_of_task,
                                  size_t num_topics) {
  std::vector<size_t> permutation(num_topics);
  std::iota(permutation.begin(), permutation.end(), size_t{0});
  DetectionResult best;
  best.overall = -1.0;
  do {
    std::vector<size_t> detected(dataset.tasks.size());
    for (size_t i = 0; i < dataset.tasks.size(); ++i) {
      detected[i] = permutation[topic_of_task[i]];
    }
    DetectionResult scored = ScoreAssignments(dataset, detected);
    if (scored.overall > best.overall) best = scored;
  } while (std::next_permutation(permutation.begin(), permutation.end()));
  return best;
}

DetectionResult RunIcLda(const datasets::Dataset& dataset) {
  topic::Corpus corpus;
  for (const auto& task : dataset.tasks) corpus.AddDocumentText(task.text);
  topic::LdaOptions options;
  options.num_topics = dataset.domain_labels.size();
  options.iterations = 300;
  topic::LdaModel model(options);
  model.Fit(corpus);
  std::vector<size_t> topic_of_task;
  for (const auto& theta : model.doc_topic()) {
    topic_of_task.push_back(ArgMax(theta));
  }
  return ScoreLatentTopics(dataset, topic_of_task, options.num_topics);
}

DetectionResult RunFcTwitterLda(const datasets::Dataset& dataset) {
  topic::Corpus corpus;
  for (const auto& task : dataset.tasks) corpus.AddDocumentText(task.text);
  topic::TwitterLdaOptions options;
  options.num_topics = dataset.domain_labels.size();
  options.iterations = 300;
  topic::TwitterLdaModel model(options);
  model.Fit(corpus);
  std::vector<size_t> topic_of_task;
  for (int topic : model.doc_assignment()) {
    topic_of_task.push_back(static_cast<size_t>(topic));
  }
  return ScoreLatentTopics(dataset, topic_of_task, options.num_topics);
}

DetectionResult RunDocs(const datasets::Dataset& dataset) {
  core::DomainVectorEstimator estimator(&benchutil::SharedKb().knowledge_base);
  std::vector<size_t> detected(dataset.tasks.size(), dataset.domain_labels.size());
  for (size_t i = 0; i < dataset.tasks.size(); ++i) {
    const auto r = estimator.Estimate(dataset.tasks[i].text);
    const size_t domain = ArgMax(r);
    // Map the canonical domain back to a dataset label (if any).
    size_t label = dataset.domain_labels.size();  // "other" sentinel
    for (size_t l = 0; l < dataset.label_to_domain.size(); ++l) {
      if (dataset.label_to_domain[l] == domain) label = l;
    }
    detected[i] = label;
  }
  return ScoreAssignments(dataset, detected);
}

}  // namespace
}  // namespace docs

int main() {
  using docs::TablePrinter;
  docs::benchutil::PrintHeader(
      "Figure 3: domain-detection accuracy (IC/LDA vs FC/TwitterLDA vs DOCS)",
      "On Item (templated text) all methods are near 100%. On 4D/QA/SFV the "
      "topic models collapse (cross-domain lookalike templates, free-form "
      "text) while DOCS stays > 95% on 4D and leads by ~20%+ overall.");

  TablePrinter overall({"Dataset", "IC(LDA)", "FC(TwitterLDA)", "DOCS"});
  for (const auto& dataset : docs::benchutil::AllDatasets()) {
    const auto ic = docs::RunIcLda(dataset);
    const auto fc = docs::RunFcTwitterLda(dataset);
    const auto docs_result = docs::RunDocs(dataset);

    std::cout << "-- Fig. 3: dataset " << dataset.name
              << " (per-domain accuracy %) --\n";
    TablePrinter table({"Domain", "IC(LDA)", "FC(TwitterLDA)", "DOCS"});
    for (size_t label = 0; label < dataset.domain_labels.size(); ++label) {
      table.AddRow({dataset.domain_labels[label],
                    TablePrinter::Fmt(100.0 * ic.per_domain_accuracy[label], 1),
                    TablePrinter::Fmt(100.0 * fc.per_domain_accuracy[label], 1),
                    TablePrinter::Fmt(
                        100.0 * docs_result.per_domain_accuracy[label], 1)});
    }
    table.Print(std::cout);
    std::cout << "\n";

    overall.AddRow({dataset.name, TablePrinter::Fmt(100.0 * ic.overall, 1),
                    TablePrinter::Fmt(100.0 * fc.overall, 1),
                    TablePrinter::Fmt(100.0 * docs_result.overall, 1)});
  }
  std::cout << "-- Fig. 3(e): overall domain-detection accuracy (%) --\n";
  overall.Print(std::cout);
  return 0;
}
