// Ablation studies for the design choices DESIGN.md calls out. Not a paper
// figure — these isolate what each DOCS ingredient buys:
//
//   TI ablations (fixed collected answers, dataset Item):
//     * full DOCS TI (DVE domain vectors + golden init)
//     * oracle-r      — ground-truth one-hot domain vectors (upper bound)
//     * uniform-r     — DVE disabled (all domains equally likely)
//     * scalar        — single-domain TI (m = 1): the domain-oblivious EM
//     * no-golden     — default initialization instead of golden seeding
//     * incremental   — per-answer updates only, never re-running the
//                       iterative algorithm (the z = infinity policy)
//
//   OTA ablations (end-to-end campaigns, same budget):
//     * full benefit (DOCS) vs domain-max, uncertainty-only, quality-blind
//       and random assignment.

#include <iostream>

#include "baselines/assigners.h"
#include "baselines/majority_vote.h"
#include "bench_common.h"
#include "common/check.h"
#include "common/table_printer.h"
#include "core/docs_system.h"
#include "core/domain_vector.h"
#include "core/golden_selection.h"
#include "core/incremental_ti.h"
#include "core/truth_inference.h"

namespace docs {
namespace {

using benchutil::Accuracy;

void TiAblation() {
  benchutil::PrintHeader(
      "Ablation: truth-inference ingredients (dataset Item, 10 answers/task)",
      "full ~ oracle-r at the top; uniform-r (DVE disabled) and no-golden "
      "collapse — the domain vectors and the golden initialization are both "
      "load-bearing; incremental-only trails the converged iterative run.");

  // Item is the most domain-sensitive dataset (Fig. 5: the scalar-quality
  // methods collapse on it), so it isolates the ingredients most clearly.
  const auto dataset = datasets::MakeItemDataset(benchutil::SharedKb());
  const auto tasks = benchutil::DveTasks(dataset);
  const auto workers = benchutil::PoolFor(dataset);
  crowd::CollectionOptions collection_options;
  collection_options.answers_per_task = 10;
  const auto collection =
      crowd::CollectAnswers(dataset, workers, collection_options);
  const auto truths = dataset.Truths();

  const auto golden = core::SelectGoldenTasks(tasks, 20);
  std::vector<size_t> golden_truth;
  for (size_t idx : golden.tasks) {
    golden_truth.push_back(dataset.tasks[idx].truth);
  }
  const auto seeds = core::InitializeQualityFromGolden(
      tasks, workers.size(), collection.answers, golden.tasks, golden_truth);

  core::TruthInference engine;
  TablePrinter table({"variant", "accuracy (%)"});

  // Full DOCS TI.
  auto full = engine.Run(tasks, workers.size(), collection.answers, &seeds);
  table.AddRow({"full (DVE r + golden)",
                TablePrinter::Fmt(
                    100.0 * Accuracy(full.inferred_choice, truths), 1)});

  // Oracle domain vectors.
  auto oracle_tasks = crowd::TasksWithOneHotDomains(dataset, 26);
  const auto oracle_seeds = core::InitializeQualityFromGolden(
      oracle_tasks, workers.size(), collection.answers, golden.tasks,
      golden_truth);
  auto oracle = engine.Run(oracle_tasks, workers.size(), collection.answers,
                           &oracle_seeds);
  table.AddRow({"oracle-r (ground-truth domains)",
                TablePrinter::Fmt(
                    100.0 * Accuracy(oracle.inferred_choice, truths), 1)});

  // Uniform domain vectors (DVE off).
  std::vector<core::Task> uniform_tasks = tasks;
  for (auto& task : uniform_tasks) {
    std::fill(task.domain_vector.begin(), task.domain_vector.end(),
              1.0 / 26.0);
  }
  const auto uniform_seeds = core::InitializeQualityFromGolden(
      uniform_tasks, workers.size(), collection.answers, golden.tasks,
      golden_truth);
  auto uniform = engine.Run(uniform_tasks, workers.size(), collection.answers,
                            &uniform_seeds);
  table.AddRow({"uniform-r (DVE disabled)",
                TablePrinter::Fmt(
                    100.0 * Accuracy(uniform.inferred_choice, truths), 1)});

  // Scalar (single-domain) TI.
  std::vector<core::Task> scalar_tasks = tasks;
  for (auto& task : scalar_tasks) task.domain_vector = {1.0};
  const auto scalar_seeds = core::InitializeQualityFromGolden(
      scalar_tasks, workers.size(), collection.answers, golden.tasks,
      golden_truth);
  auto scalar = engine.Run(scalar_tasks, workers.size(), collection.answers,
                           &scalar_seeds);
  table.AddRow({"scalar (m = 1, domain-oblivious)",
                TablePrinter::Fmt(
                    100.0 * Accuracy(scalar.inferred_choice, truths), 1)});

  // No golden initialization.
  auto no_golden = engine.Run(tasks, workers.size(), collection.answers);
  table.AddRow({"no-golden (default init)",
                TablePrinter::Fmt(
                    100.0 * Accuracy(no_golden.inferred_choice, truths), 1)});

  // Incremental-only (never re-running the iterative algorithm).
  core::IncrementalTruthInference incremental(tasks);
  for (size_t w = 0; w < workers.size(); ++w) {
    // Seeds come from InitializeQualityFromGolden over this same collection,
    // so a rejection would mean the bench itself is broken.
    DOCS_CHECK(incremental.SetWorkerQuality(w, seeds[w]).ok());
  }
  for (const auto& answer : collection.answers) {
    DOCS_CHECK(incremental.OnAnswer(answer.worker, answer.task,
                                    answer.choice)
                   .ok());
  }
  table.AddRow({"incremental-only (z = infinity)",
                TablePrinter::Fmt(
                    100.0 * Accuracy(incremental.InferredChoices(), truths),
                    1)});

  table.Print(std::cout);
}

void OtaAblation() {
  benchutil::PrintHeader(
      "Ablation: assignment-benefit ingredients (dataset QA slice, "
      "equal budgets)",
      "expected ordering: full benefit > quality-blind ~ uncertainty-only > "
      "domain-max > random. Removing any of the three factors (domains, "
      "quality, confidence) costs accuracy.");

  auto dataset = datasets::MakeQaDataset(benchutil::SharedKb(), 300, 21);
  const auto workers = benchutil::PoolFor(dataset, 60, 77);
  const auto truths = dataset.Truths();
  std::vector<core::TaskInput> inputs;
  std::vector<size_t> num_choices;
  for (const auto& task : dataset.tasks) {
    inputs.push_back({task.text, task.num_choices()});
    num_choices.push_back(task.num_choices());
  }

  auto make_system = [&](core::SelectionRule rule, const char* name) {
    core::DocsSystemOptions options;
    options.golden_count = 20;
    options.reinfer_every = 200;
    options.selection_rule = rule;
    options.display_name = name;
    auto system = std::make_unique<core::DocsSystem>(
        &benchutil::SharedKb().knowledge_base, options);
    if (!system->AddTasks(inputs, &truths).ok()) std::abort();
    for (size_t w = 0; w < workers.size(); ++w) {
      system->WorkerIndex(workers[w].id);
    }
    return system;
  };
  auto full = make_system(core::SelectionRule::kBenefit, "full-benefit");
  auto dmax = make_system(core::SelectionRule::kDomainMax, "domain-max");
  auto uncertainty =
      make_system(core::SelectionRule::kUncertainty, "uncertainty-only");
  auto blind = make_system(core::SelectionRule::kQualityBlind,
                           "quality-blind");
  baselines::RandomAssigner random_policy(num_choices, 3);

  crowd::CampaignOptions campaign;
  campaign.total_answers_per_policy = dataset.tasks.size() * 8;
  auto outcomes = crowd::RunAssignmentCampaign(
      dataset, workers,
      {full.get(), dmax.get(), uncertainty.get(), blind.get(),
       &random_policy},
      campaign);

  TablePrinter table({"variant", "accuracy (%)", "answers"});
  for (const auto& outcome : outcomes) {
    table.AddRow({outcome.name,
                  TablePrinter::Fmt(
                      100.0 * Accuracy(outcome.inferred_choices, truths), 1),
                  std::to_string(outcome.answers_collected)});
  }
  table.Print(std::cout);
}

void CoherenceAblation() {
  benchutil::PrintHeader(
      "Ablation: linker coherence pass (domain-vector sharpness)",
      "the global coherence pass (relational wikification, the [10] of the "
      "paper) concentrates domain-vector mass on the true domain — argmax "
      "detection is already saturated, so the metric here is the average "
      "r[true domain], i.e. how *sharp* the domain vectors are.");

  TablePrinter table({"Dataset", "avg r[true] (coherence off)",
                      "avg r[true] (coherence on)"});
  for (const auto& dataset : benchutil::AllDatasets()) {
    std::vector<std::string> row = {dataset.name};
    for (double weight : {0.0, 1.5}) {
      nlp::EntityLinkerOptions linker_options;
      linker_options.coherence_weight = weight;
      core::DomainVectorEstimator estimator(
          &benchutil::SharedKb().knowledge_base, linker_options);
      double mass = 0.0;
      for (const auto& task : dataset.tasks) {
        mass += estimator.Estimate(task.text)[task.true_domain];
      }
      row.push_back(TablePrinter::Fmt(mass / dataset.tasks.size(), 4));
    }
    table.AddRow(row);
  }
  table.Print(std::cout);
}

void DifficultyRobustness() {
  benchutil::PrintHeader(
      "Robustness: task difficulty (not modeled by Eq. 4)",
      "the paper's worker model assumes accuracy depends only on (worker, "
      "domain). This sweep injects intrinsic task difficulty the model does "
      "not know about; DOCS should degrade gracefully and keep beating "
      "majority vote until tasks approach pure guessing.");

  auto dataset = datasets::MakeItemDataset(benchutil::SharedKb());
  const auto tasks = benchutil::DveTasks(dataset);
  const auto workers = benchutil::PoolFor(dataset);
  const auto truths = dataset.Truths();
  const auto num_choices = benchutil::NumChoices(dataset);

  TablePrinter table({"difficulty", "MV (%)", "DOCS (%)"});
  for (double difficulty : {0.0, 0.2, 0.4, 0.6, 0.8}) {
    auto hard = dataset;
    for (auto& task : hard.tasks) task.difficulty = difficulty;
    crowd::CollectionOptions options;
    options.answers_per_task = 10;
    auto collection = crowd::CollectAnswers(hard, workers, options);

    auto golden = core::SelectGoldenTasks(tasks, 20);
    std::vector<size_t> golden_truth;
    for (size_t idx : golden.tasks) golden_truth.push_back(hard.tasks[idx].truth);
    auto seeds = core::InitializeQualityFromGolden(
        tasks, workers.size(), collection.answers, golden.tasks, golden_truth);
    core::TruthInference engine;
    auto result =
        engine.Run(tasks, workers.size(), collection.answers, &seeds);
    auto mv = baselines::MajorityVote(num_choices, collection.answers);
    table.AddRow({TablePrinter::Fmt(difficulty, 1),
                  TablePrinter::Fmt(100.0 * Accuracy(mv, truths), 1),
                  TablePrinter::Fmt(
                      100.0 * Accuracy(result.inferred_choice, truths), 1)});
  }
  table.Print(std::cout);
}

}  // namespace
}  // namespace docs

int main() {
  docs::TiAblation();
  docs::OtaAblation();
  docs::CoherenceAblation();
  docs::DifficultyRobustness();
  return 0;
}
