// Reproduces Figure 5: truth-inference comparison of MV, ZC, DS, IC, FC and
// DOCS on the four datasets — (a) accuracy and (b) execution time.
//
// Protocol (Section 6.3): every method sees the same collected answers (10
// per task) and the same 20 golden tasks for initialization. IC and FC are
// additionally handed each task's ground-truth domain (the paper does this
// "to do a more challenging job" for DOCS), while DOCS works from the
// KB-estimated domain vectors.

#include <iostream>

#include "baselines/dawid_skene.h"
#include "baselines/faitcrowd.h"
#include "baselines/icrowd.h"
#include "baselines/majority_vote.h"
#include "baselines/zencrowd.h"
#include "bench_common.h"
#include "common/stopwatch.h"
#include "common/table_printer.h"
#include "core/golden_selection.h"
#include "core/truth_inference.h"

namespace docs {
namespace {

using benchutil::Accuracy;

struct MethodScore {
  double accuracy = 0.0;
  double seconds = 0.0;
};

}  // namespace
}  // namespace docs

int main() {
  using docs::Stopwatch;
  using docs::TablePrinter;
  docs::benchutil::PrintHeader(
      "Figure 5: truth inference comparison (MV/ZC/DS/IC/FC/DOCS)",
      "MV trails everything; ZC/DS (domain-oblivious) sit in the middle; "
      "IC/FC (domain-aware) do better; DOCS wins on all four datasets even "
      "though IC/FC receive the ground-truth domains. All methods run in "
      "seconds (MV fastest).");

  TablePrinter accuracy_table(
      {"Dataset", "MV", "ZC", "DS", "IC", "FC", "DOCS"});
  TablePrinter time_table({"Dataset", "MV", "ZC", "DS", "IC", "FC", "DOCS"});

  for (const auto& dataset : docs::benchutil::AllDatasets()) {
    const auto tasks = docs::benchutil::DveTasks(dataset);
    const auto workers = docs::benchutil::PoolFor(dataset);
    docs::crowd::CollectionOptions collection_options;
    collection_options.answers_per_task = 10;
    const auto collection =
        docs::crowd::CollectAnswers(dataset, workers, collection_options);
    const auto num_choices = docs::benchutil::NumChoices(dataset);
    const auto truths = dataset.Truths();

    // Shared golden initialization (20 tasks).
    const auto golden = docs::core::SelectGoldenTasks(tasks, 20);
    std::vector<size_t> golden_truth;
    for (size_t idx : golden.tasks) {
      golden_truth.push_back(dataset.tasks[idx].truth);
    }
    const auto seeds = docs::core::InitializeQualityFromGolden(
        tasks, workers.size(), collection.answers, golden.tasks, golden_truth);
    // Scalar seed for ZC/DS: mean over the dataset's domains.
    std::vector<double> scalar_seed(workers.size(), 0.7);
    for (size_t w = 0; w < workers.size(); ++w) {
      double total = 0.0;
      for (size_t domain : dataset.label_to_domain) {
        total += seeds[w].quality[domain];
      }
      scalar_seed[w] = total / dataset.label_to_domain.size();
    }
    // Ground-truth domains for IC (one-hot vectors) and FC (hard labels).
    std::vector<std::vector<double>> one_hot(
        dataset.tasks.size(),
        std::vector<double>(dataset.domain_labels.size(), 0.0));
    std::vector<size_t> hard_label(dataset.tasks.size(), 0);
    for (size_t i = 0; i < dataset.tasks.size(); ++i) {
      one_hot[i][dataset.tasks[i].label] = 1.0;
      hard_label[i] = dataset.tasks[i].label;
    }

    std::vector<docs::MethodScore> scores(6);
    Stopwatch stopwatch;

    stopwatch.Reset();
    auto mv = docs::baselines::MajorityVote(num_choices, collection.answers);
    scores[0] = {docs::benchutil::Accuracy(mv, truths), stopwatch.ElapsedSeconds()};

    stopwatch.Reset();
    docs::baselines::ZenCrowd zc;
    auto zc_result = zc.Run(num_choices, workers.size(), collection.answers,
                            &scalar_seed);
    scores[1] = {docs::benchutil::Accuracy(zc_result.inferred_choice, truths),
                 stopwatch.ElapsedSeconds()};

    stopwatch.Reset();
    docs::baselines::DawidSkene ds;
    auto ds_result = ds.Run(num_choices, workers.size(), collection.answers,
                            &scalar_seed);
    scores[2] = {docs::benchutil::Accuracy(ds_result.inferred_choice, truths),
                 stopwatch.ElapsedSeconds()};

    stopwatch.Reset();
    docs::baselines::ICrowdInference ic;
    auto ic_result =
        ic.Run(num_choices, one_hot, workers.size(), collection.answers);
    scores[3] = {docs::benchutil::Accuracy(ic_result.inferred_choice, truths),
                 stopwatch.ElapsedSeconds()};

    stopwatch.Reset();
    docs::baselines::FaitCrowd fc;
    auto fc_result =
        fc.Run(num_choices, hard_label, dataset.domain_labels.size(),
               workers.size(), collection.answers);
    scores[4] = {docs::benchutil::Accuracy(fc_result.inferred_choice, truths),
                 stopwatch.ElapsedSeconds()};

    stopwatch.Reset();
    docs::core::TruthInference docs_engine;
    auto docs_result = docs_engine.Run(tasks, workers.size(),
                                       collection.answers, &seeds);
    scores[5] = {docs::benchutil::Accuracy(docs_result.inferred_choice, truths),
                 stopwatch.ElapsedSeconds()};

    std::vector<std::string> accuracy_row = {dataset.name};
    std::vector<std::string> time_row = {dataset.name};
    for (const auto& score : scores) {
      accuracy_row.push_back(TablePrinter::Fmt(100.0 * score.accuracy, 1));
      time_row.push_back(TablePrinter::Fmt(score.seconds, 3) + "s");
    }
    accuracy_table.AddRow(accuracy_row);
    time_table.AddRow(time_row);
  }

  std::cout << "-- Fig. 5(a): accuracy (%) --\n";
  accuracy_table.Print(std::cout);
  std::cout << "\n-- Fig. 5(b): execution time --\n";
  time_table.Print(std::cout);
  return 0;
}
