// google-benchmark micro-benchmarks of the hot kernels behind the paper's
// complexity claims: Algorithm 1 (DVE), the TI step, the OTA benefit
// computation, golden-count approximation and the worker store.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <string>
#include <utility>

#include "common/rng.h"
#include "core/domain_vector.h"
#include "core/golden_selection.h"
#include "core/incremental_ti.h"
#include "core/task_assignment.h"
#include "core/truth_inference.h"
#include "kb/synthetic_kb.h"
#include "storage/worker_store.h"

namespace docs {
namespace {

std::vector<core::EntityObservation> RandomEntities(size_t num_entities,
                                                    size_t candidates,
                                                    size_t m, uint64_t seed) {
  Rng rng(seed);
  std::vector<core::EntityObservation> entities(num_entities);
  for (auto& entity : entities) {
    entity.link_probabilities = rng.Dirichlet(candidates, 1.0);
    entity.indicators.resize(candidates);
    for (auto& h : entity.indicators) {
      h.resize(m);
      for (auto& bit : h) bit = rng.Bernoulli(0.3) ? 1 : 0;
    }
  }
  return entities;
}

// Algorithm 1 over |E_t| entities with top-20 candidates, m = 26.
void BM_DveAlgorithm1(benchmark::State& state) {
  const size_t num_entities = static_cast<size_t>(state.range(0));
  auto entities = RandomEntities(num_entities, 20, 26, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::ComputeDomainVector(entities, 26));
  }
}
BENCHMARK(BM_DveAlgorithm1)->Arg(2)->Arg(4)->Arg(6)->Arg(8);

// Enumeration on instances small enough to finish.
void BM_DveEnumeration(benchmark::State& state) {
  const size_t num_entities = static_cast<size_t>(state.range(0));
  auto entities = RandomEntities(num_entities, 3, 26, 9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::ComputeDomainVectorByEnumeration(entities, 26));
  }
}
BENCHMARK(BM_DveEnumeration)->Arg(2)->Arg(4)->Arg(6)->Arg(8);

// One TI step-1 matrix computation for a task with R answers, m = 26.
void BM_TiTruthMatrix(benchmark::State& state) {
  const size_t answers = static_cast<size_t>(state.range(0));
  Rng rng(11);
  core::Task task;
  task.domain_vector = rng.Dirichlet(26, 0.5);
  task.num_choices = 4;
  std::vector<core::Answer> task_answers;
  std::vector<core::WorkerQuality> qualities(answers);
  for (size_t w = 0; w < answers; ++w) {
    task_answers.push_back({0, w, rng.UniformInt(4)});
    qualities[w].quality = rng.Dirichlet(26, 5.0);
    for (auto& q : qualities[w].quality) q = 0.3 + q;  // plausible range
    qualities[w].weight.assign(26, 1.0);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::ComputeTruthMatrix(task, task_answers, qualities));
  }
}
BENCHMARK(BM_TiTruthMatrix)->Arg(5)->Arg(10)->Arg(20);

// Full iterative TI on n tasks with 10 answers each, m = 20. The second
// argument is the thread count of the EM sweep (1 = the sequential loops);
// results are bit-identical across the sweep, only the time moves.
void BM_TiFullRun(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const size_t m = 20;
  const size_t num_workers = 100;
  Rng rng(13);
  std::vector<core::Task> tasks(n);
  for (auto& task : tasks) {
    task.domain_vector.assign(m, 0.0);
    task.domain_vector[rng.UniformInt(m)] = 1.0;
    task.num_choices = 2;
  }
  std::vector<core::Answer> answers;
  for (size_t i = 0; i < n; ++i) {
    for (size_t a = 0; a < 10; ++a) {
      answers.push_back({i, (i * 3 + a) % num_workers, rng.UniformInt(2)});
    }
  }
  core::TruthInferenceOptions options;
  options.max_iterations = 20;
  options.tolerance = 0.0;
  options.num_threads = static_cast<size_t>(state.range(1));
  core::TruthInference engine(options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.Run(tasks, num_workers, answers));
  }
}
BENCHMARK(BM_TiFullRun)
    ->ArgsProduct({{100, 1000}, {1, 2, 4, 8}})
    ->ArgNames({"n", "threads"})
    ->Unit(benchmark::kMillisecond);

// OTA top-k selection over n candidate tasks, m = 26, scored on `threads`
// threads (the SelectTopK benefit loop).
void BM_OtaSelectTopK(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const size_t m = 26;
  Rng rng(29);
  std::vector<core::Task> tasks(n);
  std::vector<Matrix> matrices;
  std::vector<std::vector<double>> truths;
  for (auto& task : tasks) {
    task.domain_vector = rng.Dirichlet(m, 0.5);
    task.num_choices = 4;
    Matrix matrix(m, 4, 0.0);
    for (size_t d = 0; d < m; ++d) matrix.SetRow(d, rng.Dirichlet(4, 1.0));
    truths.push_back(matrix.LeftMultiply(task.domain_vector));
    matrices.push_back(std::move(matrix));
  }
  std::vector<double> quality(m);
  for (auto& q : quality) q = rng.UniformDoubleRange(0.4, 0.95);
  std::vector<uint8_t> eligible(n, 1);
  core::TaskAssignerOptions options;
  options.num_threads = static_cast<size_t>(state.range(1));
  core::TaskAssigner assigner(options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        assigner.SelectTopK(tasks, matrices, truths, quality, eligible, 10));
  }
}
BENCHMARK(BM_OtaSelectTopK)
    ->ArgsProduct({{1000, 10000}, {1, 2, 4, 8}})
    ->ArgNames({"n", "threads"});

// Benefit of a single task (Theorems 2-3 + Eq. 8), m = 26, l = 4.
void BM_OtaBenefit(benchmark::State& state) {
  Rng rng(17);
  core::Task task;
  task.domain_vector = rng.Dirichlet(26, 0.5);
  task.num_choices = 4;
  Matrix matrix(26, 4, 0.0);
  for (size_t d = 0; d < 26; ++d) matrix.SetRow(d, rng.Dirichlet(4, 1.0));
  std::vector<double> truth = matrix.LeftMultiply(task.domain_vector);
  std::vector<double> quality(26);
  for (auto& q : quality) q = rng.UniformDoubleRange(0.4, 0.95);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::Benefit(task, matrix, truth, quality));
  }
}
BENCHMARK(BM_OtaBenefit);

// Golden-count approximation for m domains.
void BM_GoldenApproximation(benchmark::State& state) {
  const size_t m = static_cast<size_t>(state.range(0));
  Rng rng(19);
  auto tau = rng.Dirichlet(m, 2.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::ApproximateGoldenCounts(tau, 20));
  }
}
BENCHMARK(BM_GoldenApproximation)->Arg(10)->Arg(26)->Arg(50);

// Incremental TI per-answer update (the O(m |V(i)|) path of Section 4.2).
void BM_IncrementalOnAnswer(benchmark::State& state) {
  const size_t m = 26;
  Rng rng(23);
  std::vector<core::Task> tasks(1024);
  for (auto& task : tasks) {
    task.domain_vector = rng.Dirichlet(m, 0.5);
    task.num_choices = 2;
  }
  core::IncrementalTruthInference engine(std::move(tasks));
  size_t worker = 0, task = 0;
  for (auto _ : state) {
    Status status = engine.OnAnswer(worker, task, rng.UniformInt(2));
    benchmark::DoNotOptimize(status);
    task = (task + 1) % 1024;
    if (task == 0) ++worker;
  }
}
BENCHMARK(BM_IncrementalOnAnswer);

// End-to-end entity linking + Algorithm 1 for one task description.
void BM_DveEndToEnd(benchmark::State& state) {
  static const kb::SyntheticKb* kKb = new kb::SyntheticKb(kb::BuildSyntheticKb());
  core::DomainVectorEstimator estimator(&kKb->knowledge_base);
  for (auto _ : state) {
    benchmark::DoNotOptimize(estimator.Estimate(
        "Does Michael Jordan win more NBA championships than Kobe Bryant?"));
  }
}
BENCHMARK(BM_DveEndToEnd);

// WorkerStore in-memory put+merge throughput.
void BM_WorkerStoreMerge(benchmark::State& state) {
  auto store = storage::WorkerStore::InMemory(26);
  storage::WorkerQualityRecord record;
  record.quality.assign(26, 0.8);
  record.weight.assign(26, 1.0);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        store.Merge("worker_" + std::to_string(i++ % 100), record));
  }
}
BENCHMARK(BM_WorkerStoreMerge);

}  // namespace
}  // namespace docs

BENCHMARK_MAIN();
