// google-benchmark micro-benchmarks of the hot kernels behind the paper's
// complexity claims: Algorithm 1 (DVE), the TI step, the OTA benefit
// computation, golden-count approximation and the worker store.

#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <new>
#include <string>
#include <utility>

#include "common/check.h"
#include "common/rng.h"
#include "core/docs_system.h"
#include "core/domain_vector.h"
#include "core/golden_selection.h"
#include "core/incremental_ti.h"
#include "core/task_assignment.h"
#include "core/truth_inference.h"
#include "datasets/dataset.h"
#include "kb/synthetic_kb.h"
#include "storage/worker_store.h"

// --- Heap-allocation accounting ---------------------------------------------
// The serving-path benchmarks report allocations per request, so global
// operator new is replaced with a counting forwarder (process-wide; the
// fetch_add is a few ns against the multi-microsecond operations measured
// here). Scalar and array forms share one counter; the sized/aligned delete
// variants all forward to free() as malloc-backed storage requires.

namespace {
std::atomic<uint64_t> g_heap_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_heap_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  g_heap_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

// GCC's -Wmismatched-new-delete cannot see through the replaced operators at
// -O2: it pairs the opaque `operator new` call at an inlined delete site with
// the visible free() below and flags a mismatch. The forwarders are malloc/
// free-backed by construction, so the pairing is correct; silence the false
// positive for these definitions only.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

namespace docs {
namespace {

uint64_t HeapAllocations() {
  return g_heap_allocations.load(std::memory_order_relaxed);
}

std::vector<core::EntityObservation> RandomEntities(size_t num_entities,
                                                    size_t candidates,
                                                    size_t m, uint64_t seed) {
  Rng rng(seed);
  std::vector<core::EntityObservation> entities(num_entities);
  for (auto& entity : entities) {
    entity.link_probabilities = rng.Dirichlet(candidates, 1.0);
    entity.indicators.resize(candidates);
    for (auto& h : entity.indicators) {
      h.resize(m);
      for (auto& bit : h) bit = rng.Bernoulli(0.3) ? 1 : 0;
    }
  }
  return entities;
}

// Algorithm 1 over |E_t| entities with top-20 candidates, m = 26.
void BM_DveAlgorithm1(benchmark::State& state) {
  const size_t num_entities = static_cast<size_t>(state.range(0));
  auto entities = RandomEntities(num_entities, 20, 26, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::ComputeDomainVector(entities, 26));
  }
}
BENCHMARK(BM_DveAlgorithm1)->Arg(2)->Arg(4)->Arg(6)->Arg(8);

// Enumeration on instances small enough to finish.
void BM_DveEnumeration(benchmark::State& state) {
  const size_t num_entities = static_cast<size_t>(state.range(0));
  auto entities = RandomEntities(num_entities, 3, 26, 9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::ComputeDomainVectorByEnumeration(entities, 26));
  }
}
BENCHMARK(BM_DveEnumeration)->Arg(2)->Arg(4)->Arg(6)->Arg(8);

// One TI step-1 matrix computation for a task with R answers, m = 26.
void BM_TiTruthMatrix(benchmark::State& state) {
  const size_t answers = static_cast<size_t>(state.range(0));
  Rng rng(11);
  core::Task task;
  task.domain_vector = rng.Dirichlet(26, 0.5);
  task.num_choices = 4;
  std::vector<core::Answer> task_answers;
  std::vector<core::WorkerQuality> qualities(answers);
  for (size_t w = 0; w < answers; ++w) {
    task_answers.push_back({0, w, rng.UniformInt(4)});
    qualities[w].quality = rng.Dirichlet(26, 5.0);
    for (auto& q : qualities[w].quality) q = 0.3 + q;  // plausible range
    qualities[w].weight.assign(26, 1.0);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::ComputeTruthMatrix(task, task_answers, qualities));
  }
}
BENCHMARK(BM_TiTruthMatrix)->Arg(5)->Arg(10)->Arg(20);

// Full iterative TI on n tasks with 10 answers each, m = 20. The second
// argument is the thread count of the EM sweep (1 = the sequential loops);
// results are bit-identical across the sweep, only the time moves.
void BM_TiFullRun(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const size_t m = 20;
  const size_t num_workers = 100;
  Rng rng(13);
  std::vector<core::Task> tasks(n);
  for (auto& task : tasks) {
    task.domain_vector.assign(m, 0.0);
    task.domain_vector[rng.UniformInt(m)] = 1.0;
    task.num_choices = 2;
  }
  std::vector<core::Answer> answers;
  for (size_t i = 0; i < n; ++i) {
    for (size_t a = 0; a < 10; ++a) {
      answers.push_back({i, (i * 3 + a) % num_workers, rng.UniformInt(2)});
    }
  }
  core::TruthInferenceOptions options;
  options.max_iterations = 20;
  options.tolerance = 0.0;
  options.num_threads = static_cast<size_t>(state.range(1));
  core::TruthInference engine(options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.Run(tasks, num_workers, answers));
  }
}
BENCHMARK(BM_TiFullRun)
    ->ArgsProduct({{100, 1000}, {1, 2, 4, 8}})
    ->ArgNames({"n", "threads"})
    ->Unit(benchmark::kMillisecond);

// OTA top-k selection over n candidate tasks, m = 26, scored on `threads`
// threads (the SelectTopK benefit loop).
void BM_OtaSelectTopK(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const size_t m = 26;
  Rng rng(29);
  std::vector<core::Task> tasks(n);
  std::vector<Matrix> matrices;
  std::vector<std::vector<double>> truths;
  for (auto& task : tasks) {
    task.domain_vector = rng.Dirichlet(m, 0.5);
    task.num_choices = 4;
    Matrix matrix(m, 4, 0.0);
    for (size_t d = 0; d < m; ++d) matrix.SetRow(d, rng.Dirichlet(4, 1.0));
    truths.push_back(matrix.LeftMultiply(task.domain_vector));
    matrices.push_back(std::move(matrix));
  }
  std::vector<double> quality(m);
  for (auto& q : quality) q = rng.UniformDoubleRange(0.4, 0.95);
  std::vector<uint8_t> eligible(n, 1);
  core::TaskAssignerOptions options;
  options.num_threads = static_cast<size_t>(state.range(1));
  core::TaskAssigner assigner(options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        assigner.SelectTopK(tasks, matrices, truths, quality, eligible, 10));
  }
}
BENCHMARK(BM_OtaSelectTopK)
    ->ArgsProduct({{1000, 10000}, {1, 2, 4, 8}})
    ->ArgNames({"n", "threads"});

// Benefit of a single task (Theorems 2-3 + Eq. 8), m = 26, l = 4.
void BM_OtaBenefit(benchmark::State& state) {
  Rng rng(17);
  core::Task task;
  task.domain_vector = rng.Dirichlet(26, 0.5);
  task.num_choices = 4;
  Matrix matrix(26, 4, 0.0);
  for (size_t d = 0; d < 26; ++d) matrix.SetRow(d, rng.Dirichlet(4, 1.0));
  std::vector<double> truth = matrix.LeftMultiply(task.domain_vector);
  std::vector<double> quality(26);
  for (auto& q : quality) q = rng.UniformDoubleRange(0.4, 0.95);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::Benefit(task, matrix, truth, quality));
  }
}
BENCHMARK(BM_OtaBenefit);

// Golden-count approximation for m domains.
void BM_GoldenApproximation(benchmark::State& state) {
  const size_t m = static_cast<size_t>(state.range(0));
  Rng rng(19);
  auto tau = rng.Dirichlet(m, 2.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::ApproximateGoldenCounts(tau, 20));
  }
}
BENCHMARK(BM_GoldenApproximation)->Arg(10)->Arg(26)->Arg(50);

// Incremental TI per-answer update (the O(m |V(i)|) path of Section 4.2).
void BM_IncrementalOnAnswer(benchmark::State& state) {
  const size_t m = 26;
  Rng rng(23);
  std::vector<core::Task> tasks(1024);
  for (auto& task : tasks) {
    task.domain_vector = rng.Dirichlet(m, 0.5);
    task.num_choices = 2;
  }
  core::IncrementalTruthInference engine(std::move(tasks));
  size_t worker = 0, task = 0;
  for (auto _ : state) {
    Status status = engine.OnAnswer(worker, task, rng.UniformInt(2));
    benchmark::DoNotOptimize(status);
    task = (task + 1) % 1024;
    if (task == 0) ++worker;
  }
}
BENCHMARK(BM_IncrementalOnAnswer);

// End-to-end entity linking + Algorithm 1 for one task description.
void BM_DveEndToEnd(benchmark::State& state) {
  static const kb::SyntheticKb* kKb = new kb::SyntheticKb(kb::BuildSyntheticKb());
  core::DomainVectorEstimator estimator(&kKb->knowledge_base);
  for (auto _ : state) {
    benchmark::DoNotOptimize(estimator.Estimate(
        "Does Michael Jordan win more NBA championships than Kobe Bryant?"));
  }
}
BENCHMARK(BM_DveEndToEnd);

// --- Serving-path RequestTasks benchmarks -----------------------------------
// One DocsSystem serving SelectTasks(worker, 10) over an n-task QA campaign
// with a settled answer history. Configurations:
//   Warm      — benefit cache + index on, fused kernel: repeat requests on a
//               quiet system pop the top-k off the per-worker benefit index.
//   WarmSweep — Warm across n = 1k/10k/100k tasks: the DESIGN.md §16
//               sub-linearity evidence (scripts/bench.sh gates warm ns/op at
//               100k under 3x the 10k figure; an O(n) warm path would be
//               ~10x).
//   WarmScan  — cache on, index off, same n sweep: the O(n) epoch-scan warm
//               path the index replaced, for the scaling comparison.
//   Cold      — cache off, allocating reference kernel: the seed-era serving
//               path, rescoring every eligible task per request.
//   ColdFused — cache off, fused kernel: full rescoring cost without the
//               per-task heap churn, isolating the two optimizations.
// Each reports allocs/op from the counting operator new above; the
// acceptance bars are Warm at >= 5x fewer allocations than Cold and the
// WarmSweep sub-linearity gate.

const kb::SyntheticKb& ServingKb() {
  static const kb::SyntheticKb* kKb =
      new kb::SyntheticKb(kb::BuildSyntheticKb());
  return *kKb;
}

std::unique_ptr<core::DocsSystem> MakeServingSystem(bool benefit_cache,
                                                    bool reference_kernel,
                                                    size_t num_tasks,
                                                    bool benefit_index) {
  const kb::SyntheticKb& kb = ServingKb();
  const auto dataset = datasets::MakeQaDataset(kb, num_tasks);
  std::vector<core::TaskInput> inputs;
  inputs.reserve(dataset.tasks.size());
  for (const auto& task : dataset.tasks) {
    inputs.push_back({task.text, task.num_choices()});
  }
  core::DocsSystemOptions options;
  options.golden_count = 0;    // no golden probe: measure OTA serving only
  options.reinfer_every = 0;   // no periodic re-inference mid-benchmark
  options.lease_duration = 0;  // no lease bookkeeping in the request loop
  options.num_threads = 1;
  options.benefit_cache = benefit_cache;
  options.benefit_index = benefit_index;
  options.reference_kernel = reference_kernel;
  auto system =
      std::make_unique<core::DocsSystem>(&kb.knowledge_base, options);
  Status status = system->AddTasks(inputs);
  DOCS_CHECK(status.ok()) << status.ToString();
  // Settle a non-trivial inference state: 8 workers answer a spread of
  // tasks, so the benefit scores rank real truth matrices, not priors.
  for (size_t w = 0; w < 8; ++w) {
    const size_t worker = system->WorkerIndex("bench_w" + std::to_string(w));
    for (size_t t = w; t < dataset.tasks.size(); t += 17) {
      system->OnAnswer(worker, t, (t + w) % dataset.tasks[t].num_choices());
    }
  }
  return system;
}

void ServeRequestTasksLoop(benchmark::State& state, bool benefit_cache,
                           bool reference_kernel, size_t num_tasks = 512,
                           bool benefit_index = true) {
  auto system = MakeServingSystem(benefit_cache, reference_kernel, num_tasks,
                                  benefit_index);
  const size_t worker = system->WorkerIndex("bench_w0");
  // One untimed request warms the cache row, the index heap, and the
  // scratch arenas.
  benchmark::DoNotOptimize(system->SelectTasks(worker, 10));
  const uint64_t allocs_before = HeapAllocations();
  uint64_t iters = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(system->SelectTasks(worker, 10));
    ++iters;
  }
  if (iters > 0) {
    state.counters["allocs/op"] =
        static_cast<double>(HeapAllocations() - allocs_before) /
        static_cast<double>(iters);
  }
}

void BM_ServeRequestTasksWarm(benchmark::State& state) {
  ServeRequestTasksLoop(state, /*benefit_cache=*/true,
                        /*reference_kernel=*/false);
}
BENCHMARK(BM_ServeRequestTasksWarm);

void BM_ServeRequestTasksWarmSweep(benchmark::State& state) {
  ServeRequestTasksLoop(state, /*benefit_cache=*/true,
                        /*reference_kernel=*/false,
                        /*num_tasks=*/static_cast<size_t>(state.range(0)),
                        /*benefit_index=*/true);
}
BENCHMARK(BM_ServeRequestTasksWarmSweep)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(100000)
    ->ArgName("n");

void BM_ServeRequestTasksWarmScan(benchmark::State& state) {
  ServeRequestTasksLoop(state, /*benefit_cache=*/true,
                        /*reference_kernel=*/false,
                        /*num_tasks=*/static_cast<size_t>(state.range(0)),
                        /*benefit_index=*/false);
}
BENCHMARK(BM_ServeRequestTasksWarmScan)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(100000)
    ->ArgName("n");

void BM_ServeRequestTasksCold(benchmark::State& state) {
  ServeRequestTasksLoop(state, /*benefit_cache=*/false,
                        /*reference_kernel=*/true);
}
BENCHMARK(BM_ServeRequestTasksCold);

void BM_ServeRequestTasksColdFused(benchmark::State& state) {
  ServeRequestTasksLoop(state, /*benefit_cache=*/false,
                        /*reference_kernel=*/false);
}
BENCHMARK(BM_ServeRequestTasksColdFused);

// WorkerStore in-memory put+merge throughput.
void BM_WorkerStoreMerge(benchmark::State& state) {
  auto store = storage::WorkerStore::InMemory(26);
  storage::WorkerQualityRecord record;
  record.quality.assign(26, 0.8);
  record.weight.assign(26, 1.0);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        store.Merge("worker_" + std::to_string(i++ % 100), record));
  }
}
BENCHMARK(BM_WorkerStoreMerge);

}  // namespace
}  // namespace docs

BENCHMARK_MAIN();
