// Reproduces Figure 6: the worker-quality case study on dataset Item.
//   (a) histogram of workers' true qualities per domain (10 bins);
//   (b) quality calibration for the 3 most active workers (true vs
//       estimated quality in each of the 4 domains);
//   (c) calibration in the NBA domain for every worker with > 20 answers.

#include <algorithm>
#include <cmath>
#include <iostream>

#include "bench_common.h"
#include "common/table_printer.h"
#include "core/golden_selection.h"
#include "core/truth_inference.h"

namespace docs {
namespace {

struct CaseStudy {
  datasets::Dataset dataset;
  std::vector<crowd::SimulatedWorker> workers;
  crowd::CollectionResult collection;
  core::TruthInferenceResult inference;
  // Empirical true quality per worker per dataset label (and answer counts).
  std::vector<std::vector<double>> true_quality;
  std::vector<std::vector<size_t>> answered;
  std::vector<size_t> answers_per_worker;
};

CaseStudy Run() {
  CaseStudy study;
  study.dataset = datasets::MakeItemDataset(benchutil::SharedKb());
  study.workers = benchutil::PoolFor(study.dataset);
  crowd::CollectionOptions options;
  options.answers_per_task = 10;
  study.collection = crowd::CollectAnswers(study.dataset, study.workers, options);

  auto tasks = benchutil::DveTasks(study.dataset);
  auto golden = core::SelectGoldenTasks(tasks, 20);
  std::vector<size_t> golden_truth;
  for (size_t idx : golden.tasks) {
    golden_truth.push_back(study.dataset.tasks[idx].truth);
  }
  auto seeds = core::InitializeQualityFromGolden(
      tasks, study.workers.size(), study.collection.answers, golden.tasks,
      golden_truth);
  core::TruthInference engine;
  study.inference = engine.Run(tasks, study.workers.size(),
                               study.collection.answers, &seeds);

  const size_t num_labels = study.dataset.domain_labels.size();
  study.true_quality.assign(study.workers.size(),
                            std::vector<double>(num_labels, 0.0));
  study.answered.assign(study.workers.size(),
                        std::vector<size_t>(num_labels, 0));
  study.answers_per_worker.assign(study.workers.size(), 0);
  std::vector<std::vector<size_t>> correct(study.workers.size(),
                                           std::vector<size_t>(num_labels, 0));
  for (const auto& answer : study.collection.answers) {
    const auto& spec = study.dataset.tasks[answer.task];
    ++study.answered[answer.worker][spec.label];
    ++study.answers_per_worker[answer.worker];
    if (answer.choice == spec.truth) ++correct[answer.worker][spec.label];
  }
  for (size_t w = 0; w < study.workers.size(); ++w) {
    for (size_t label = 0; label < num_labels; ++label) {
      if (study.answered[w][label] > 0) {
        study.true_quality[w][label] =
            static_cast<double>(correct[w][label]) / study.answered[w][label];
      }
    }
  }
  return study;
}

}  // namespace
}  // namespace docs

int main() {
  using docs::TablePrinter;
  docs::benchutil::PrintHeader(
      "Figure 6: worker-quality case study on Item",
      "(a) workers' true qualities differ per domain (selecting domain "
      "experts matters); (b)(c) the estimated qualities lie close to the "
      "Y = X diagonal — DOCS calibrates worker quality accurately.");

  auto study = docs::Run();
  const auto& labels = study.dataset.domain_labels;

  // --- (a) histogram of true qualities ---------------------------------------
  std::cout << "-- Fig. 6(a): #workers per true-quality bin (domains of "
               "Item) --\n";
  TablePrinter histogram({"Bin", labels[0], labels[1], labels[2], labels[3]});
  for (size_t bin = 0; bin < 10; ++bin) {
    std::vector<std::string> row = {
        "[" + TablePrinter::Fmt(bin / 10.0, 1) + "," +
        TablePrinter::Fmt((bin + 1) / 10.0, 1) + (bin == 9 ? "]" : ")")};
    for (size_t label = 0; label < labels.size(); ++label) {
      size_t count = 0;
      for (size_t w = 0; w < study.workers.size(); ++w) {
        if (study.answered[w][label] == 0) continue;
        const double q = study.true_quality[w][label];
        const size_t b = std::min<size_t>(9, static_cast<size_t>(q * 10.0));
        if (b == bin) ++count;
      }
      row.push_back(std::to_string(count));
    }
    histogram.AddRow(row);
  }
  histogram.Print(std::cout);

  // --- (b) calibration for the 3 most active workers -------------------------
  std::vector<size_t> order(study.workers.size());
  for (size_t w = 0; w < order.size(); ++w) order[w] = w;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return study.answers_per_worker[a] > study.answers_per_worker[b];
  });
  std::cout << "\n-- Fig. 6(b): calibration for the 3 most active workers "
               "(true q̃ vs estimated q per domain) --\n";
  TablePrinter calibration(
      {"Worker", "#Answers", "Domain", "true q̃", "est q", "|diff|"});
  for (size_t rank = 0; rank < 3 && rank < order.size(); ++rank) {
    const size_t w = order[rank];
    for (size_t label = 0; label < labels.size(); ++label) {
      if (study.answered[w][label] == 0) continue;
      const size_t domain = study.dataset.label_to_domain[label];
      const double truth = study.true_quality[w][label];
      const double estimate = study.inference.worker_quality[w].quality[domain];
      calibration.AddRow({study.workers[w].id,
                          std::to_string(study.answers_per_worker[w]),
                          labels[label], TablePrinter::Fmt(truth, 2),
                          TablePrinter::Fmt(estimate, 2),
                          TablePrinter::Fmt(std::fabs(truth - estimate), 2)});
    }
  }
  calibration.Print(std::cout);

  // --- (c) NBA calibration for all workers with > 20 answers -----------------
  std::cout << "\n-- Fig. 6(c): NBA-domain calibration, workers with > 20 "
               "answers --\n";
  const size_t nba_domain = study.dataset.label_to_domain[0];
  double total_deviation = 0.0;
  size_t counted = 0;
  TablePrinter nba({"Worker", "#NBA answers", "true q̃", "est q"});
  for (size_t w = 0; w < study.workers.size(); ++w) {
    if (study.answers_per_worker[w] <= 20 || study.answered[w][0] == 0) {
      continue;
    }
    const double truth = study.true_quality[w][0];
    const double estimate =
        study.inference.worker_quality[w].quality[nba_domain];
    total_deviation += std::fabs(truth - estimate);
    ++counted;
    nba.AddRow({study.workers[w].id, std::to_string(study.answered[w][0]),
                TablePrinter::Fmt(truth, 2), TablePrinter::Fmt(estimate, 2)});
  }
  nba.Print(std::cout);
  std::cout << "\nmean |q - q̃| over " << counted
            << " active workers in NBA: "
            << TablePrinter::Fmt(counted ? total_deviation / counted : 0.0, 3)
            << " (paper: points lie close to Y = X)\n";
  return 0;
}
