// Closed-loop load generator for the crowd gateway.
//
// Self-hosts a CrowdGateway over a large synthetic QA campaign (or targets
// an already-running gateway via --port), then drives it from N concurrent
// connections. Each connection is one closed-loop client thread with its own
// CrowdClient and worker identity: request a HIT, answer every task in it,
// repeat — every wire round trip is timed individually. At the end the
// per-call latencies are merged and the harness reports throughput and
// p50/p95/p99, the numbers a capacity plan for a real AMT front-end needs.
//
//   ./build/bench/bench_server [--connections=N] [--reactors=N] [--ops=N]
//                              [--port=P] [--mode=mixed|warm] [--json=PATH]
//                              [--async] [--reinfer=N] [--kill-after-ops=N]
//
//   --connections  concurrent client connections (default 4)
//   --reactors     event-loop threads in the self-hosted gateway
//                  (default 1; ignored with --port)
//   --ops          wire calls per connection before it disconnects
//                  (default 2000; requests and submissions both count)
//   --port         target an external gateway instead of self-hosting
//                  (default 0 = self-host on an ephemeral port)
//   --mode         "mixed" (default): request a HIT, answer every task in
//                  it, repeat — the inference state keeps moving.
//                  "warm": RequestTasks only, no submissions — the system
//                  stays quiet, so repeat requests measure the epoch-tagged
//                  benefit cache's hit path end to end over the wire.
//   --async        self-hosted system runs in async-inference mode
//                  (DESIGN.md §15): SubmitAnswer enqueues to the background
//                  inference service, RequestTasks serves from the published
//                  snapshot. Ignored with --port.
//   --reinfer=N    full-EM cadence (DocsSystemOptions::reinfer_every) for
//                  the self-hosted system (default 0 = never). Nonzero makes
//                  the sync-vs-async latency gap visible: in sync mode every
//                  Nth answer runs EM under the state lock the serving path
//                  needs.
//   --json         also write the summary metrics as one JSON object to
//                  PATH (consumed by scripts/bench.sh).
//   --kill-after-ops  self-crash hook for the chaos harness: SIGKILL this
//                  process (no cleanup, no flush) once N wire calls have
//                  completed across all connections. 0 = disabled.
//
// Clients are ResilientCrowdClient instances, so a flaky or restarting
// gateway surfaces as retries/timeouts/reconnects (reported per connection
// and in --json) instead of aborted runs.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "client/resilient_client.h"
#include "common/table_printer.h"
#include "core/concurrent_docs_system.h"
#include "net/wire.h"
#include "server/crowd_gateway.h"

namespace {

size_t FlagValue(int argc, char** argv, const char* name, size_t fallback) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return static_cast<size_t>(std::atoll(argv[i] + prefix.size()));
    }
  }
  return fallback;
}

std::string StringFlag(int argc, char** argv, const char* name,
                       const std::string& fallback) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::string(argv[i] + prefix.size());
    }
  }
  return fallback;
}

bool BoolFlag(int argc, char** argv, const char* name) {
  const std::string bare = std::string("--") + name;
  for (int i = 1; i < argc; ++i) {
    if (bare == argv[i] || bare + "=1" == argv[i]) return true;
  }
  return false;
}

double Percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const double rank = p * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

}  // namespace

int main(int argc, char** argv) {
  namespace core = docs::core;
  namespace benchutil = docs::benchutil;
  using docs::Status;
  using docs::TablePrinter;
  using Clock = std::chrono::steady_clock;

  const size_t connections = FlagValue(argc, argv, "connections", 4);
  const size_t reactors = FlagValue(argc, argv, "reactors", 1);
  const size_t ops_per_connection = FlagValue(argc, argv, "ops", 2000);
  uint16_t port = static_cast<uint16_t>(FlagValue(argc, argv, "port", 0));
  const std::string mode = StringFlag(argc, argv, "mode", "mixed");
  const std::string json_path = StringFlag(argc, argv, "json", "");
  const size_t kill_after_ops = FlagValue(argc, argv, "kill-after-ops", 0);
  const bool async_inference = BoolFlag(argc, argv, "async");
  const size_t reinfer_every = FlagValue(argc, argv, "reinfer", 0);
  if (mode != "mixed" && mode != "warm") {
    std::cerr << "unknown --mode=" << mode << " (expected mixed|warm)\n";
    return 1;
  }
  const bool warm_mode = mode == "warm";

  benchutil::PrintHeader(
      "gateway load generator",
      "closed-loop wire latency stays in the tens of microseconds on "
      "loopback; scaling is bounded by reactor count and shard contention");

  // Self-host unless --port points at an external gateway. The campaign is
  // large enough that the task pool never drains mid-run.
  const auto& synthetic = benchutil::SharedKb();
  auto dataset = docs::datasets::MakeQaDataset(synthetic, 4000, 7);
  core::DocsSystemOptions options;
  options.golden_count = 0;
  options.lease_duration = 1 << 30;  // leases never expire during the run
  options.reinfer_every = reinfer_every;
  options.async_inference = async_inference;
  core::ConcurrentDocsSystem system(&synthetic.knowledge_base, options);
  docs::server::CrowdGatewayOptions gateway_options;
  gateway_options.num_reactors = reactors;
  docs::server::CrowdGateway gateway(&system, gateway_options);
  if (port == 0) {
    std::vector<core::TaskInput> inputs;
    for (const auto& task : dataset.tasks) {
      inputs.push_back({task.text, task.num_choices()});
    }
    if (Status status = system.AddTasks(inputs); !status.ok()) {
      std::cerr << "AddTasks: " << status.ToString() << "\n";
      return 1;
    }
    if (Status status = gateway.Start(); !status.ok()) {
      std::cerr << "gateway start: " << status.ToString() << "\n";
      return 1;
    }
    port = gateway.port();
  }
  std::cout << "target: 127.0.0.1:" << port << "   connections: "
            << connections << "   reactors: " << reactors
            << "   ops/connection: " << ops_per_connection
            << "   mode: " << mode
            << "   inference: " << (async_inference ? "async" : "sync")
            << "   reinfer_every: " << reinfer_every << "\n\n";

  // Closed loop: each thread alternates RequestTasks(4) with submitting
  // every granted task, timing each wire call. In warm mode the submissions
  // are skipped — the quiet system serves every repeat request from the
  // benefit cache. Latencies are kept per op type: the headline question for
  // async mode is what RequestTasks tail latency looks like while
  // SubmitAnswer keeps the inference state moving.
  std::vector<std::vector<double>> request_us(connections);
  std::vector<std::vector<double>> submit_us(connections);
  std::vector<size_t> errors(connections, 0);
  std::vector<docs::client::ResilientClientStats> client_stats(connections);
  std::atomic<size_t> global_ops{0};
  auto drive = [&](size_t c) {
    docs::client::ResilientClientOptions client_options;
    client_options.port = port;
    client_options.socket.recv_timeout_ms = 10000;
    client_options.socket.send_timeout_ms = 10000;
    client_options.nonce = 0x10ad0000 + c;  // reproducible id namespaces
    docs::client::ResilientCrowdClient client(client_options);
    const std::string worker = "load-" + std::to_string(c);
    request_us[c].reserve(ops_per_connection);
    submit_us[c].reserve(ops_per_connection);
    std::vector<uint64_t> hit;
    size_t next = 0;  // next unanswered task of the current HIT
    for (size_t op = 0; op < ops_per_connection; ++op) {
      const auto start = Clock::now();
      Status status = docs::OkStatus();
      bool was_request = false;
      if (warm_mode || next >= hit.size()) {
        hit.clear();
        next = 0;
        was_request = true;
        status = client.RequestTasks(worker, 4, &hit);
        if (status.ok() && hit.empty()) break;  // pool drained
      } else {
        status = client.SubmitAnswer(worker, hit[next], 0);
        ++next;
      }
      const auto stop = Clock::now();
      if (kill_after_ops > 0 &&
          global_ops.fetch_add(1) + 1 >= kill_after_ops) {
        // Chaos hook: die the way a crashed server process dies — no
        // destructors, no flushes. The harness watching us expects 137.
        std::raise(SIGKILL);
      }
      if (!status.ok()) {
        ++errors[c];
        continue;
      }
      (was_request ? request_us[c] : submit_us[c])
          .push_back(std::chrono::duration<double, std::micro>(stop - start)
                         .count());
    }
    client_stats[c] = client.stats();
  };

  const auto wall_start = Clock::now();
  std::vector<std::thread> threads;
  for (size_t c = 0; c < connections; ++c) threads.emplace_back(drive, c);
  for (auto& thread : threads) thread.join();
  const double wall_s =
      std::chrono::duration<double>(Clock::now() - wall_start).count();

  std::vector<double> merged;
  std::vector<double> requests;
  std::vector<double> submits;
  size_t total_errors = 0;
  docs::client::ResilientClientStats totals;
  for (size_t c = 0; c < connections; ++c) {
    requests.insert(requests.end(), request_us[c].begin(),
                    request_us[c].end());
    submits.insert(submits.end(), submit_us[c].begin(), submit_us[c].end());
    total_errors += errors[c];
    totals.retries += client_stats[c].retries;
    totals.timeouts += client_stats[c].timeouts;
    totals.reconnects += client_stats[c].reconnects;
    totals.duplicate_acks += client_stats[c].duplicate_acks;
  }
  merged.reserve(requests.size() + submits.size());
  merged.insert(merged.end(), requests.begin(), requests.end());
  merged.insert(merged.end(), submits.begin(), submits.end());
  std::sort(merged.begin(), merged.end());
  std::sort(requests.begin(), requests.end());
  std::sort(submits.begin(), submits.end());
  if (merged.empty()) {
    std::cerr << "no successful wire calls (" << total_errors
              << " errors)\n";
    return 1;
  }

  TablePrinter table({"metric", "value"});
  table.AddRow({"wire calls ok", std::to_string(merged.size())});
  table.AddRow({"errors", std::to_string(total_errors)});
  table.AddRow({"retries", std::to_string(totals.retries)});
  table.AddRow({"timeouts", std::to_string(totals.timeouts)});
  table.AddRow({"reconnects", std::to_string(totals.reconnects)});
  table.AddRow({"wall time (s)", TablePrinter::Fmt(wall_s, 3)});
  table.AddRow({"throughput (ops/s)",
                TablePrinter::Fmt(static_cast<double>(merged.size()) / wall_s,
                                  1)});
  table.AddRow({"p50 latency (us)",
                TablePrinter::Fmt(Percentile(merged, 0.50), 1)});
  table.AddRow({"p95 latency (us)",
                TablePrinter::Fmt(Percentile(merged, 0.95), 1)});
  table.AddRow({"p99 latency (us)",
                TablePrinter::Fmt(Percentile(merged, 0.99), 1)});
  table.AddRow({"p99.9 latency (us)",
                TablePrinter::Fmt(Percentile(merged, 0.999), 1)});
  if (!requests.empty()) {
    table.AddRow({"RequestTasks p50 (us)",
                  TablePrinter::Fmt(Percentile(requests, 0.50), 1)});
    table.AddRow({"RequestTasks p95 (us)",
                  TablePrinter::Fmt(Percentile(requests, 0.95), 1)});
    table.AddRow({"RequestTasks p99 (us)",
                  TablePrinter::Fmt(Percentile(requests, 0.99), 1)});
    table.AddRow({"RequestTasks p99.9 (us)",
                  TablePrinter::Fmt(Percentile(requests, 0.999), 1)});
  }
  if (!submits.empty()) {
    table.AddRow({"SubmitAnswer p50 (us)",
                  TablePrinter::Fmt(Percentile(submits, 0.50), 1)});
    table.AddRow({"SubmitAnswer p95 (us)",
                  TablePrinter::Fmt(Percentile(submits, 0.95), 1)});
    table.AddRow({"SubmitAnswer p99 (us)",
                  TablePrinter::Fmt(Percentile(submits, 0.99), 1)});
    table.AddRow({"SubmitAnswer p99.9 (us)",
                  TablePrinter::Fmt(Percentile(submits, 0.999), 1)});
  }
  table.Print(std::cout);

  if (totals.retries + totals.timeouts + totals.reconnects > 0) {
    std::cout << "\nper-connection resilience:\n";
    for (size_t c = 0; c < connections; ++c) {
      std::cout << "  conn " << c << ": " << client_stats[c].retries
                << " retries, " << client_stats[c].timeouts << " timeouts, "
                << client_stats[c].reconnects << " reconnects, "
                << client_stats[c].duplicate_acks << " duplicate acks, "
                << errors[c] << " errors\n";
    }
  }

  uint64_t row_hits = 0;
  uint64_t row_misses = 0;
  uint64_t request_hits = 0;
  uint64_t request_misses = 0;
  uint64_t index_pops = 0;
  uint64_t index_repairs = 0;
  uint64_t index_rebuilds = 0;
  uint64_t index_invalidations = 0;
  uint64_t async_epoch = 0;
  uint64_t async_publishes = 0;
  uint64_t async_pending = 0;
  uint64_t async_enqueue_waits = 0;
  double async_publish_gap_us = 0.0;
  if (gateway.running()) {
    if (async_inference) system.Drain();  // settle the queue before sampling
    const docs::server::GatewayStats stats = gateway.stats();
    row_hits = stats.benefit_cache_hits;
    row_misses = stats.benefit_cache_misses;
    request_hits = stats.benefit_cache_request_hits;
    request_misses = stats.benefit_cache_request_misses;
    index_pops = stats.benefit_index_pops;
    index_repairs = stats.benefit_index_repairs;
    index_rebuilds = stats.benefit_index_rebuilds;
    index_invalidations = stats.benefit_index_generation_invalidations;
    async_epoch = stats.async_snapshot_epoch;
    async_publishes = stats.async_publishes;
    async_pending = stats.async_answers_pending;
    async_enqueue_waits = stats.async_enqueue_waits;
    async_publish_gap_us = stats.async_publish_gap_us;
    // Hit-rate at request granularity: a serving pass that recomputed
    // nothing is a hit. Row counts are recomputation volume, not a rate.
    const uint64_t request_total = request_hits + request_misses;
    const double hit_rate =
        request_total > 0
            ? static_cast<double>(request_hits) /
                  static_cast<double>(request_total)
            : 0.0;
    std::cout << "\ngateway: " << stats.requests_served << " served, "
              << stats.requests_shed << " shed, " << stats.protocol_errors
              << " protocol errors\n"
              << "benefit cache: " << TablePrinter::Fmt(hit_rate * 100.0, 1)
              << "% request hit-rate (" << request_hits << " hits / "
              << request_misses << " misses); row level: " << row_hits
              << " hits, " << row_misses << " recomputes\n"
              << "benefit index: " << index_pops << " pops, " << index_repairs
              << " repairs, " << index_rebuilds << " rebuilds, "
              << index_invalidations << " generation invalidations\n";
    if (async_inference) {
      std::cout << "async inference: snapshot epoch " << async_epoch << ", "
                << async_publishes << " publishes, " << async_pending
                << " pending, " << async_enqueue_waits
                << " enqueue waits, last publish gap "
                << TablePrinter::Fmt(async_publish_gap_us, 1) << " us\n";
    }
    gateway.Stop();
  }

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::cerr << "cannot write --json=" << json_path << "\n";
      return 1;
    }
    out << "{\"bench\": \"bench_server\", \"mode\": \"" << mode
        << "\", \"inference\": \"" << (async_inference ? "async" : "sync")
        << "\", \"reinfer_every\": " << reinfer_every
        << ", \"connections\": " << connections
        << ", \"reactors\": " << reactors
        << ", \"ops_per_connection\": " << ops_per_connection
        << ", \"wire_calls_ok\": " << merged.size()
        << ", \"errors\": " << total_errors
        << ", \"retries\": " << totals.retries
        << ", \"timeouts\": " << totals.timeouts
        << ", \"reconnects\": " << totals.reconnects
        << ", \"duplicate_acks\": " << totals.duplicate_acks
        << ", \"retries_per_connection\": [";
    for (size_t c = 0; c < connections; ++c) {
      out << (c > 0 ? "," : "") << client_stats[c].retries;
    }
    out << "], \"reconnects_per_connection\": [";
    for (size_t c = 0; c < connections; ++c) {
      out << (c > 0 ? "," : "") << client_stats[c].reconnects;
    }
    out << "], \"timeouts_per_connection\": [";
    for (size_t c = 0; c < connections; ++c) {
      out << (c > 0 ? "," : "") << client_stats[c].timeouts;
    }
    out << "], \"wall_s\": " << wall_s
        << ", \"throughput_ops_s\": "
        << (static_cast<double>(merged.size()) / wall_s)
        << ", \"p50_us\": " << Percentile(merged, 0.50)
        << ", \"p95_us\": " << Percentile(merged, 0.95)
        << ", \"p99_us\": " << Percentile(merged, 0.99)
        << ", \"p999_us\": " << Percentile(merged, 0.999)
        << ", \"request_calls\": " << requests.size()
        << ", \"request_p50_us\": " << Percentile(requests, 0.50)
        << ", \"request_p95_us\": " << Percentile(requests, 0.95)
        << ", \"request_p99_us\": " << Percentile(requests, 0.99)
        << ", \"request_p999_us\": " << Percentile(requests, 0.999)
        << ", \"submit_calls\": " << submits.size()
        << ", \"submit_p50_us\": " << Percentile(submits, 0.50)
        << ", \"submit_p95_us\": " << Percentile(submits, 0.95)
        << ", \"submit_p99_us\": " << Percentile(submits, 0.99)
        << ", \"submit_p999_us\": " << Percentile(submits, 0.999)
        << ", \"async_snapshot_epoch\": " << async_epoch
        << ", \"async_publishes\": " << async_publishes
        << ", \"async_answers_pending\": " << async_pending
        << ", \"async_enqueue_waits\": " << async_enqueue_waits
        << ", \"async_publish_gap_us\": " << async_publish_gap_us
        << ", \"benefit_cache_row_hits\": " << row_hits
        << ", \"benefit_cache_row_misses\": " << row_misses
        << ", \"benefit_cache_request_hits\": " << request_hits
        << ", \"benefit_cache_request_misses\": " << request_misses
        << ", \"benefit_cache_hit_rate\": "
        << (request_hits + request_misses > 0
                ? static_cast<double>(request_hits) /
                      static_cast<double>(request_hits + request_misses)
                : 0.0)
        << ", \"benefit_index_pops\": " << index_pops
        << ", \"benefit_index_repairs\": " << index_repairs
        << ", \"benefit_index_rebuilds\": " << index_rebuilds
        << ", \"benefit_index_generation_invalidations\": "
        << index_invalidations << "}\n";
  }
  return 0;
}
