// Reproduces Figure 8: the end-to-end online-task-assignment comparison.
//   (a) accuracy of Baseline / AskIt! / IC / QASCA / D-Max / DOCS after all
//       assignments (10 answers per task per method, k = 3 per HIT slot);
//   (b) worst-case single-assignment latency per method;
//   (c) OTA scalability (simulation): assignment time vs n for k in
//       {5, 10, 50}, m = 20.

#include <iostream>
#include <memory>

#include "baselines/assigners.h"
#include "bench_common.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "common/table_printer.h"
#include "core/docs_system.h"
#include "core/task_assignment.h"

namespace docs {
namespace {

std::vector<crowd::PolicyOutcome> RunDatasetCampaign(
    const datasets::Dataset& dataset) {
  const auto workers = benchutil::PoolFor(dataset);
  const auto num_choices = benchutil::NumChoices(dataset);
  const auto truths = dataset.Truths();

  std::vector<core::TaskInput> inputs;
  for (const auto& task : dataset.tasks) {
    inputs.push_back({task.text, task.num_choices()});
  }
  // Latent topic vectors for IC's assigner come from its own LDA-equivalent
  // view; as in Fig. 5 we favor it with the ground-truth one-hot domains.
  std::vector<std::vector<double>> one_hot(
      dataset.tasks.size(),
      std::vector<double>(dataset.domain_labels.size(), 0.0));
  for (size_t i = 0; i < dataset.tasks.size(); ++i) {
    one_hot[i][dataset.tasks[i].label] = 1.0;
  }

  baselines::RandomAssigner baseline(num_choices, 17);
  baselines::AskItAssigner askit(num_choices);
  baselines::ICrowdAssigner icrowd(num_choices, one_hot,
                                   /*answers_per_task=*/10);
  baselines::QascaAssigner qasca(num_choices, /*refresh_every=*/200);

  core::DocsSystemOptions dmax_options;
  dmax_options.golden_count = 20;
  dmax_options.reinfer_every = 200;
  dmax_options.selection_rule = core::SelectionRule::kDomainMax;
  dmax_options.display_name = "D-Max";
  core::DocsSystem dmax(&benchutil::SharedKb().knowledge_base, dmax_options);
  if (!dmax.AddTasks(inputs, &truths).ok()) return {};

  core::DocsSystemOptions docs_options;
  docs_options.golden_count = 20;
  docs_options.reinfer_every = 200;
  core::DocsSystem docs_system(&benchutil::SharedKb().knowledge_base,
                               docs_options);
  if (!docs_system.AddTasks(inputs, &truths).ok()) return {};

  for (size_t w = 0; w < workers.size(); ++w) {
    dmax.WorkerIndex(workers[w].id);
    docs_system.WorkerIndex(workers[w].id);
  }

  crowd::CampaignOptions campaign;
  campaign.total_answers_per_policy = dataset.tasks.size() * 10;
  campaign.tasks_per_policy_per_hit = 3;
  return crowd::RunAssignmentCampaign(
      dataset, workers,
      {&baseline, &askit, &icrowd, &qasca, &dmax, &docs_system}, campaign);
}

void SectionScalability() {
  benchutil::PrintHeader(
      "Fig. 8(c): OTA scalability (simulation; m = 20)",
      "Assignment time is linear in n and essentially independent of k "
      "(linear top-k selection); 10K tasks assign in well under a second.");
  TablePrinter table({"#Tasks", "k = 5", "k = 10", "k = 50"});
  const size_t m = 20;
  for (size_t n : {size_t{2000}, size_t{4000}, size_t{6000}, size_t{8000},
                   size_t{10000}}) {
    Rng rng(n);
    std::vector<core::Task> tasks(n);
    std::vector<Matrix> matrices;
    std::vector<std::vector<double>> truths;
    for (auto& task : tasks) {
      task.domain_vector = rng.Dirichlet(m, 0.5);
      task.num_choices = 2 + rng.UniformInt(3);
      Matrix matrix(m, task.num_choices, 0.0);
      for (size_t d = 0; d < m; ++d) {
        matrix.SetRow(d, rng.Dirichlet(task.num_choices, 1.0));
      }
      truths.push_back(matrix.LeftMultiply(task.domain_vector));
      matrices.push_back(std::move(matrix));
    }
    std::vector<double> worker_quality(m);
    for (auto& q : worker_quality) q = rng.UniformDoubleRange(0.4, 0.95);
    std::vector<uint8_t> eligible(n, 1);

    std::vector<std::string> row = {std::to_string(n)};
    core::TaskAssigner assigner;
    for (size_t k : {size_t{5}, size_t{10}, size_t{50}}) {
      Stopwatch stopwatch;
      (void)assigner.SelectTopK(tasks, matrices, truths, worker_quality,
                                eligible, k);
      row.push_back(TablePrinter::Fmt(stopwatch.ElapsedSeconds(), 4) + "s");
    }
    table.AddRow(row);
  }
  table.Print(std::cout);
}

}  // namespace
}  // namespace docs

int main(int argc, char** argv) {
  std::string section = "all";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--section=", 0) == 0) section = arg.substr(10);
  }

  using docs::TablePrinter;
  if (section == "all" || section == "campaign") {
    docs::benchutil::PrintHeader(
        "Fig. 8(a)(b): end-to-end OTA comparison (6 methods in parallel)",
        "Baseline worst (random, no model); AskIt! adds task uncertainty; "
        "QASCA adds worker quality; IC adds per-task quality but wastes "
        "budget on confident tasks (equal-times constraint); D-Max matches "
        "domains but ignores confidence; DOCS (benefit = domains + quality + "
        "confidence) is best on all datasets. All methods assign within "
        "tens of milliseconds.");

    TablePrinter accuracy({"Dataset", "Baseline", "AskIt!", "IC", "QASCA",
                           "D-Max", "DOCS"});
    TablePrinter latency({"Dataset", "Baseline", "AskIt!", "IC", "QASCA",
                          "D-Max", "DOCS"});
    for (const auto& dataset : docs::benchutil::AllDatasets()) {
      auto outcomes = docs::RunDatasetCampaign(dataset);
      if (outcomes.empty()) continue;
      std::vector<std::string> accuracy_row = {dataset.name};
      std::vector<std::string> latency_row = {dataset.name};
      for (const auto& outcome : outcomes) {
        accuracy_row.push_back(TablePrinter::Fmt(
            100.0 * docs::benchutil::Accuracy(outcome.inferred_choices,
                                              dataset.Truths()),
            1));
        latency_row.push_back(
            TablePrinter::Fmt(outcome.worst_assignment_seconds * 1e3, 2) +
            "ms");
      }
      accuracy.AddRow(accuracy_row);
      latency.AddRow(latency_row);
      std::cout << "(finished campaign on " << dataset.name << ")\n";
    }
    std::cout << "\n-- Fig. 8(a): accuracy (%) after all assignments --\n";
    accuracy.Print(std::cout);
    std::cout << "\n-- Fig. 8(b): worst-case assignment time --\n";
    latency.Print(std::cout);
  }
  if (section == "all" || section == "scalability") {
    docs::SectionScalability();
  }
  return 0;
}
