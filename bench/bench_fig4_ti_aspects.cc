// Reproduces Figure 4: the five TI studies of Section 6.3.
//   (a) convergence — parameter change Delta per iteration;
//   (b) accuracy vs number of golden tasks in [0, 40];
//   (c) accuracy vs number of collected answers per task in [1, 10];
//   (d) worker-quality estimation — average |q - q̃| vs answers per worker;
//   (e) TI scalability (simulation) — time vs n for |W| in {10, 100, 500}.

#include <algorithm>
#include <cmath>
#include <iostream>

#include "bench_common.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "common/table_printer.h"
#include "core/golden_selection.h"
#include "core/truth_inference.h"

namespace docs {
namespace {

using benchutil::Accuracy;

struct DatasetRun {
  datasets::Dataset dataset;
  std::vector<core::Task> tasks;             // DVE domain vectors
  std::vector<crowd::SimulatedWorker> workers;
  crowd::CollectionResult collection;        // 10 answers per task
  core::GoldenSelectionResult golden;
  std::vector<size_t> golden_truth;
};

DatasetRun MakeRun(const datasets::Dataset& dataset) {
  DatasetRun run;
  run.dataset = dataset;
  run.tasks = benchutil::DveTasks(dataset);
  run.workers = benchutil::PoolFor(dataset);
  crowd::CollectionOptions options;
  options.answers_per_task = 10;
  run.collection = crowd::CollectAnswers(dataset, run.workers, options);
  run.golden = core::SelectGoldenTasks(run.tasks, 20);
  for (size_t idx : run.golden.tasks) {
    run.golden_truth.push_back(dataset.tasks[idx].truth);
  }
  return run;
}

std::vector<core::WorkerQuality> GoldenSeeds(const DatasetRun& run,
                                             size_t num_golden) {
  std::vector<size_t> golden_tasks(
      run.golden.tasks.begin(),
      run.golden.tasks.begin() + std::min(num_golden, run.golden.tasks.size()));
  std::vector<size_t> golden_truth(
      run.golden_truth.begin(),
      run.golden_truth.begin() + golden_tasks.size());
  return core::InitializeQualityFromGolden(run.tasks, run.workers.size(),
                                           run.collection.answers,
                                           golden_tasks, golden_truth);
}

void SectionConvergence(const std::vector<DatasetRun>& runs) {
  benchutil::PrintHeader(
      "Fig. 4(a): TI convergence (Delta vs iteration)",
      "Delta drops sharply within the first ~10 iterations and stays flat; "
      "20 iterations suffice in practice.");
  TablePrinter table({"Iteration", "Item", "4D", "QA", "SFV"});
  std::vector<std::vector<double>> histories;
  core::TruthInferenceOptions options;
  options.max_iterations = 50;
  options.tolerance = 0.0;
  for (const auto& run : runs) {
    core::TruthInference engine(options);
    auto seeds = GoldenSeeds(run, 20);
    auto result = engine.Run(run.tasks, run.workers.size(),
                             run.collection.answers, &seeds);
    histories.push_back(result.delta_history);
  }
  for (size_t iter = 0; iter < 49; iter += 4) {
    std::vector<std::string> row = {std::to_string(iter + 2)};
    for (const auto& history : histories) {
      row.push_back(iter < history.size()
                        ? TablePrinter::Fmt(history[iter], 6)
                        : "-");
    }
    table.AddRow(row);
  }
  table.Print(std::cout);
}

void SectionGolden(const std::vector<DatasetRun>& runs) {
  benchutil::PrintHeader(
      "Fig. 4(b): accuracy vs #golden tasks",
      "A few golden tasks lift accuracy noticeably (the iterative approach "
      "needs good initialization); beyond ~20 the curve is flat.");
  TablePrinter table({"#Golden", "Item", "4D", "QA", "SFV"});
  for (size_t num_golden : {size_t{0}, size_t{5}, size_t{10}, size_t{20},
                            size_t{30}, size_t{40}}) {
    std::vector<std::string> row = {std::to_string(num_golden)};
    for (const auto& run : runs) {
      // Re-select golden with the requested budget so counts stay balanced.
      auto golden = core::SelectGoldenTasks(run.tasks, num_golden);
      std::vector<size_t> truth;
      for (size_t idx : golden.tasks) {
        truth.push_back(run.dataset.tasks[idx].truth);
      }
      auto seeds = core::InitializeQualityFromGolden(
          run.tasks, run.workers.size(), run.collection.answers, golden.tasks,
          truth);
      core::TruthInference engine;
      auto result = engine.Run(run.tasks, run.workers.size(),
                               run.collection.answers, &seeds);
      row.push_back(TablePrinter::Fmt(
          100.0 * Accuracy(result.inferred_choice, run.dataset.Truths()), 1));
    }
    table.AddRow(row);
  }
  table.Print(std::cout);
}

void SectionAnswers(const std::vector<DatasetRun>& runs) {
  benchutil::PrintHeader(
      "Fig. 4(c): accuracy vs #collected answers per task",
      "Accuracy improves with more answers per task and saturates around "
      "8-10 answers.");
  TablePrinter table({"#Answers", "Item", "4D", "QA", "SFV"});
  for (size_t cap = 1; cap <= 10; ++cap) {
    std::vector<std::string> row = {std::to_string(cap)};
    for (const auto& run : runs) {
      // Keep the first `cap` answers of each task.
      std::vector<size_t> taken(run.tasks.size(), 0);
      std::vector<core::Answer> answers;
      for (const auto& answer : run.collection.answers) {
        if (taken[answer.task] >= cap) continue;
        ++taken[answer.task];
        answers.push_back(answer);
      }
      auto seeds = GoldenSeeds(run, 20);
      core::TruthInference engine;
      auto result =
          engine.Run(run.tasks, run.workers.size(), answers, &seeds);
      row.push_back(TablePrinter::Fmt(
          100.0 * Accuracy(result.inferred_choice, run.dataset.Truths()), 1));
    }
    table.AddRow(row);
  }
  table.Print(std::cout);
}

void SectionDeviation(const std::vector<DatasetRun>& runs) {
  benchutil::PrintHeader(
      "Fig. 4(d): worker-quality estimation (avg |q - q̃| vs answers/worker)",
      "The more tasks a worker answers, the closer the estimated quality "
      "gets to her true quality; the deviation is consistently low beyond "
      "~80 answered tasks.");
  TablePrinter table({"#Answered/worker", "Item", "4D", "QA", "SFV"});
  for (size_t cap : {size_t{5}, size_t{10}, size_t{20}, size_t{40}, size_t{60},
                     size_t{80}, size_t{100}}) {
    std::vector<std::string> row = {std::to_string(cap)};
    for (const auto& run : runs) {
      // Keep the first `cap` answers of each worker.
      std::vector<size_t> taken(run.workers.size(), 0);
      std::vector<core::Answer> answers;
      for (const auto& answer : run.collection.answers) {
        if (taken[answer.worker] >= cap) continue;
        ++taken[answer.worker];
        answers.push_back(answer);
      }
      auto seeds = GoldenSeeds(run, 20);
      core::TruthInference engine;
      auto result =
          engine.Run(run.tasks, run.workers.size(), answers, &seeds);

      // Empirical true quality q̃ per worker per dataset domain over the
      // same answer subset.
      const size_t m = benchutil::SharedKb().knowledge_base.num_domains();
      std::vector<std::vector<double>> correct(run.workers.size(),
                                               std::vector<double>(m, 0.0));
      std::vector<std::vector<double>> total(run.workers.size(),
                                             std::vector<double>(m, 0.0));
      for (const auto& answer : answers) {
        const auto& spec = run.dataset.tasks[answer.task];
        total[answer.worker][spec.true_domain] += 1.0;
        if (answer.choice == spec.truth) {
          correct[answer.worker][spec.true_domain] += 1.0;
        }
      }
      double deviation = 0.0;
      size_t terms = 0;
      for (size_t w = 0; w < run.workers.size(); ++w) {
        for (size_t domain : run.dataset.label_to_domain) {
          if (total[w][domain] < 1.0) continue;
          const double empirical = correct[w][domain] / total[w][domain];
          deviation += std::fabs(result.worker_quality[w].quality[domain] -
                                 empirical);
          ++terms;
        }
      }
      row.push_back(TablePrinter::Fmt(terms > 0 ? deviation / terms : 0.0, 3));
    }
    table.AddRow(row);
  }
  table.Print(std::cout);
}

void SectionScalability() {
  benchutil::PrintHeader(
      "Fig. 4(e): TI scalability (simulation; m = 20, 10 answers/task)",
      "Time grows linearly with n and is invariant to the worker-set size; "
      "10K tasks finish in seconds.");
  TablePrinter table({"#Tasks", "10 workers", "100 workers", "500 workers"});
  core::TruthInferenceOptions options;
  options.max_iterations = 20;
  options.tolerance = 0.0;
  const size_t m = 20;
  for (size_t n : {size_t{2000}, size_t{4000}, size_t{6000}, size_t{8000},
                   size_t{10000}}) {
    std::vector<std::string> row = {std::to_string(n)};
    for (size_t num_workers : {size_t{10}, size_t{100}, size_t{500}}) {
      Rng rng(n * 31 + num_workers);
      std::vector<core::Task> tasks(n);
      for (auto& task : tasks) {
        task.domain_vector.assign(m, 0.0);
        task.domain_vector[rng.UniformInt(m)] = 1.0;
        task.num_choices = 2;
      }
      std::vector<core::Answer> answers;
      answers.reserve(n * 10);
      for (size_t i = 0; i < n; ++i) {
        const size_t redundancy = std::min<size_t>(10, num_workers);
        for (size_t a = 0; a < redundancy; ++a) {
          answers.push_back(
              {i, (i * 7 + a * 13) % num_workers, rng.UniformInt(2)});
        }
      }
      core::TruthInference engine(options);
      Stopwatch stopwatch;
      (void)engine.Run(tasks, num_workers, answers);
      row.push_back(TablePrinter::Fmt(stopwatch.ElapsedSeconds(), 2) + "s");
    }
    table.AddRow(row);
  }
  table.Print(std::cout);
}

void SectionThreads() {
  benchutil::PrintHeader(
      "TI thread scaling (m = 20, 10 answers/task, 100 workers)",
      "The EM sweep runs on the deterministic chunked pool of "
      "common/parallel.h: results are bit-identical for every thread count, "
      "so the only thing that moves is the wall clock. Speedup is relative "
      "to 1 thread and is bounded by the machine's core count.");
  TablePrinter table({"#Tasks", "Threads", "Time", "Speedup"});
  const size_t m = 20;
  const size_t num_workers = 100;
  for (size_t n : {size_t{2000}, size_t{8000}}) {
    Rng rng(n * 37);
    std::vector<core::Task> tasks(n);
    for (auto& task : tasks) {
      task.domain_vector.assign(m, 0.0);
      task.domain_vector[rng.UniformInt(m)] = 1.0;
      task.num_choices = 2;
    }
    std::vector<core::Answer> answers;
    answers.reserve(n * 10);
    for (size_t i = 0; i < n; ++i) {
      for (size_t a = 0; a < 10; ++a) {
        answers.push_back(
            {i, (i * 7 + a * 13) % num_workers, rng.UniformInt(2)});
      }
    }
    double baseline_seconds = 0.0;
    for (size_t threads : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
      core::TruthInferenceOptions options;
      options.max_iterations = 20;
      options.tolerance = 0.0;
      options.num_threads = threads;
      core::TruthInference engine(options);
      Stopwatch stopwatch;
      (void)engine.Run(tasks, num_workers, answers);
      const double seconds = stopwatch.ElapsedSeconds();
      if (threads == 1) baseline_seconds = seconds;
      table.AddRow({std::to_string(n), std::to_string(threads),
                    TablePrinter::Fmt(seconds, 2) + "s",
                    TablePrinter::Fmt(
                        seconds > 0.0 ? baseline_seconds / seconds : 1.0, 2) +
                        "x"});
    }
  }
  table.Print(std::cout);
}

}  // namespace
}  // namespace docs

int main(int argc, char** argv) {
  // Optional
  // --section=<convergence|golden|answers|deviation|scalability|threads>.
  std::string section = "all";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--section=", 0) == 0) section = arg.substr(10);
  }

  std::vector<docs::DatasetRun> runs;
  if (section == "all" ||
      (section != "scalability" && section != "threads")) {
    for (const auto& dataset : docs::benchutil::AllDatasets()) {
      runs.push_back(docs::MakeRun(dataset));
    }
  }
  if (section == "all" || section == "convergence") {
    docs::SectionConvergence(runs);
  }
  if (section == "all" || section == "golden") docs::SectionGolden(runs);
  if (section == "all" || section == "answers") docs::SectionAnswers(runs);
  if (section == "all" || section == "deviation") docs::SectionDeviation(runs);
  if (section == "all" || section == "scalability") docs::SectionScalability();
  if (section == "all" || section == "threads") docs::SectionThreads();
  return 0;
}
