// Reproduces Figure 7: golden-task selection (Section 5.2).
//   (a) our approximation vs exhaustive enumeration of all compositions:
//       execution time as n' grows (m = 10) plus the approximation ratio
//       gamma = |D - Dopt| / Dopt;
//   (b) scalability of the approximation: n' in [1K, 10K] for
//       m in {10, 20, 50} (time is independent of n').

#include <cmath>
#include <iostream>

#include "bench_common.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "common/table_printer.h"
#include "core/golden_selection.h"

int main() {
  using docs::Rng;
  using docs::Stopwatch;
  using docs::TablePrinter;
  namespace core = docs::core;

  docs::benchutil::PrintHeader(
      "Figure 7: golden-task selection",
      "(a) enumeration time explodes with n' (paper: > 600s at n' = 20 with "
      "m = 10) while the approximation is instant, with gamma well under "
      "0.1% on average; (b) the approximation's time is invariant to n'.");

  // --- (a) approximation vs enumeration --------------------------------------
  std::cout << "-- Fig. 7(a): time and approximation ratio (m = 10, random "
               "tau, 5 trials per point) --\n";
  TablePrinter comparison(
      {"n'", "DOCS time", "Enumeration time", "avg gamma"});
  const size_t m = 10;
  for (size_t n_prime : {size_t{4}, size_t{8}, size_t{12}, size_t{16},
                         size_t{20}}) {
    double docs_seconds = 0.0;
    double enum_seconds = 0.0;
    double gamma_total = 0.0;
    size_t gamma_terms = 0;
    const size_t trials = 5;
    for (size_t trial = 0; trial < trials; ++trial) {
      Rng rng(n_prime * 101 + trial);
      auto tau = rng.Dirichlet(m, 2.0);

      Stopwatch stopwatch;
      auto approx = core::ApproximateGoldenCounts(tau, n_prime);
      docs_seconds += stopwatch.ElapsedSeconds();

      stopwatch.Reset();
      auto optimal = core::OptimalGoldenCountsByEnumeration(tau, n_prime);
      enum_seconds += stopwatch.ElapsedSeconds();

      const double d_approx = core::GoldenObjective(approx, tau);
      const double d_optimal = core::GoldenObjective(optimal, tau);
      if (d_optimal > 1e-12) {
        gamma_total += (d_approx - d_optimal) / d_optimal;
        ++gamma_terms;
      }
    }
    comparison.AddRow(
        {std::to_string(n_prime),
         TablePrinter::Fmt(docs_seconds / trials * 1e3, 4) + "ms",
         TablePrinter::Fmt(enum_seconds / trials, 3) + "s",
         TablePrinter::Fmt(
             gamma_terms ? 100.0 * gamma_total / gamma_terms : 0.0, 4) +
             "%"});
  }
  comparison.Print(std::cout);

  // --- (b) scalability --------------------------------------------------------
  std::cout << "\n-- Fig. 7(b): approximation scalability (time vs n') --\n";
  TablePrinter scalability({"n'", "m = 10", "m = 20", "m = 50"});
  for (size_t n_prime : {size_t{1000}, size_t{4000}, size_t{7000},
                         size_t{10000}}) {
    std::vector<std::string> row = {std::to_string(n_prime)};
    for (size_t domains : {size_t{10}, size_t{20}, size_t{50}}) {
      Rng rng(n_prime + domains);
      auto tau = rng.Dirichlet(domains, 2.0);
      Stopwatch stopwatch;
      const size_t repeats = 100;  // amplify sub-millisecond timings
      for (size_t rep = 0; rep < repeats; ++rep) {
        (void)core::ApproximateGoldenCounts(tau, n_prime);
      }
      row.push_back(
          TablePrinter::Fmt(stopwatch.ElapsedSeconds() / repeats * 1e3, 4) +
          "ms");
    }
    scalability.AddRow(row);
  }
  scalability.Print(std::cout);
  return 0;
}
