#ifndef DOCS_BENCH_BENCH_COMMON_H_
#define DOCS_BENCH_BENCH_COMMON_H_

// Shared plumbing for the experiment harnesses that regenerate the paper's
// tables and figures. Each binary prints the same rows/series the paper
// reports, plus a one-line statement of the paper's qualitative expectation.

#include <iostream>
#include <string>
#include <vector>

#include "core/domain_vector.h"
#include "core/types.h"
#include "crowd/campaign.h"
#include "crowd/worker_pool.h"
#include "datasets/dataset.h"
#include "kb/synthetic_kb.h"

namespace docs::benchutil {

/// Builds the shared synthetic KB once per process.
inline const kb::SyntheticKb& SharedKb() {
  static const kb::SyntheticKb* kKb = new kb::SyntheticKb(kb::BuildSyntheticKb());
  return *kKb;
}

/// The four paper datasets in presentation order.
inline std::vector<datasets::Dataset> AllDatasets() {
  std::vector<datasets::Dataset> all;
  for (const auto& name : datasets::AllDatasetNames()) {
    all.push_back(datasets::MakeDatasetByName(name, SharedKb()));
  }
  return all;
}

inline double Accuracy(const std::vector<size_t>& inferred,
                       const std::vector<size_t>& truths) {
  if (truths.empty()) return 0.0;
  size_t correct = 0;
  for (size_t i = 0; i < truths.size(); ++i) {
    correct += inferred[i] == truths[i];
  }
  return static_cast<double>(correct) / static_cast<double>(truths.size());
}

inline std::vector<size_t> NumChoices(const datasets::Dataset& dataset) {
  std::vector<size_t> out;
  out.reserve(dataset.tasks.size());
  for (const auto& task : dataset.tasks) out.push_back(task.num_choices());
  return out;
}

/// Runs DVE over every task of the dataset (top-`c` candidates per entity).
inline std::vector<core::Task> DveTasks(const datasets::Dataset& dataset,
                                        size_t top_c = 20) {
  nlp::EntityLinkerOptions linker_options;
  linker_options.max_candidates = top_c;
  core::DomainVectorEstimator estimator(&SharedKb().knowledge_base,
                                        linker_options);
  std::vector<core::Task> tasks;
  tasks.reserve(dataset.tasks.size());
  for (const auto& spec : dataset.tasks) {
    core::Task task;
    task.domain_vector = estimator.Estimate(spec.text);
    task.num_choices = spec.num_choices();
    tasks.push_back(std::move(task));
  }
  return tasks;
}

/// The default simulated worker pool for a dataset (expertise biased toward
/// the dataset's domains, skewed activity, some spammers).
inline std::vector<crowd::SimulatedWorker> PoolFor(
    const datasets::Dataset& dataset, size_t num_workers = 60,
    uint64_t seed = 1234) {
  crowd::WorkerPoolOptions options;
  options.num_workers = num_workers;
  // MTurk-like conditions: a sizable adversarial tail (below-chance on
  // binary tasks), mediocre generalists, genuine experts only in a worker's
  // own domains. This is what makes initialization (golden tasks) and
  // domain-aware weighting matter, as in the paper's Figs. 4-5.
  options.spammer_fraction = 0.2;
  options.spammer_min = 0.2;
  options.spammer_max = 0.5;
  // A correlated-adversary coalition: workers who always pick choice 1.
  options.constant_answerer_fraction = 0.12;
  options.base_min = 0.5;
  options.base_max = 0.68;
  options.expert_min = 0.82;
  options.expert_max = 0.95;
  // Moderate activity skew: most workers complete several HITs, as in the
  // paper's Fig. 6 (many workers with 20-80 answered tasks).
  options.activity_sigma = 0.6;
  return crowd::MakeWorkerPool(SharedKb().knowledge_base.num_domains(),
                               dataset.label_to_domain, options, seed);
}

inline void PrintHeader(const std::string& title,
                        const std::string& expectation) {
  std::cout << "\n=== " << title << " ===\n";
  std::cout << "paper expectation: " << expectation << "\n\n";
}

}  // namespace docs::benchutil

#endif  // DOCS_BENCH_BENCH_COMMON_H_
