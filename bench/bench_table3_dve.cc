// Reproduces Table 3: the efficiency of DVE's Algorithm 1 vs. the naive
// enumeration of Equation 1, on all four datasets with top-20/10/3 candidate
// concepts per entity. The paper reports Algorithm 1 finishing within a
// minute everywhere while enumeration needs "> 1 day" at top-20; our C++
// enumeration is faster in absolute terms, so runs whose linking count
// exceeds a budget are reported as an extrapolated estimate instead of being
// executed.

#include <cstdint>
#include <iostream>

#include "bench_common.h"
#include "common/stopwatch.h"
#include "common/table_printer.h"
#include "core/domain_vector.h"
#include "nlp/entity_linker.h"

namespace docs {
namespace {

struct DveTimings {
  double algorithm1_seconds = 0.0;
  double enumeration_seconds = 0.0;  // measured part
  double enumeration_estimated_seconds = 0.0;
  bool enumeration_capped = false;
};

// Per-task observations for a dataset at a given top-c.
std::vector<std::vector<core::EntityObservation>> LinkDataset(
    const datasets::Dataset& dataset, size_t top_c) {
  nlp::EntityLinkerOptions options;
  options.max_candidates = top_c;
  nlp::EntityLinker linker(&benchutil::SharedKb().knowledge_base, options);
  std::vector<std::vector<core::EntityObservation>> observations;
  observations.reserve(dataset.tasks.size());
  for (const auto& task : dataset.tasks) {
    observations.push_back(
        core::DomainVectorEstimator::ObservationsFromLinkedEntities(
            benchutil::SharedKb().knowledge_base, linker.Link(task.text)));
  }
  return observations;
}

DveTimings TimeDataset(
    const std::vector<std::vector<core::EntityObservation>>& observations,
    size_t num_domains) {
  // Keep the total enumeration work bounded: tasks above the per-task cap
  // are extrapolated from the measured cost per linking.
  constexpr uint64_t kPerTaskLinkingCap = 200'000;

  DveTimings timings;
  Stopwatch stopwatch;
  for (const auto& entities : observations) {
    (void)core::ComputeDomainVector(entities, num_domains);
  }
  timings.algorithm1_seconds = stopwatch.ElapsedSeconds();

  uint64_t measured_linkings = 0;
  uint64_t capped_linkings = 0;
  stopwatch.Reset();
  for (const auto& entities : observations) {
    const uint64_t linkings = core::CountLinkings(entities);
    if (linkings > kPerTaskLinkingCap) {
      timings.enumeration_capped = true;
      capped_linkings += linkings;
      continue;
    }
    measured_linkings += linkings;
    (void)core::ComputeDomainVectorByEnumeration(entities, num_domains);
  }
  timings.enumeration_seconds = stopwatch.ElapsedSeconds();
  const double per_linking =
      measured_linkings > 0
          ? timings.enumeration_seconds / static_cast<double>(measured_linkings)
          : 0.0;
  timings.enumeration_estimated_seconds =
      timings.enumeration_seconds +
      per_linking * static_cast<double>(capped_linkings);
  return timings;
}

}  // namespace
}  // namespace docs

int main() {
  using docs::TablePrinter;
  docs::benchutil::PrintHeader(
      "Table 3: DVE efficiency (Algorithm 1 vs Enumeration)",
      "Algorithm 1 finishes within a minute on every dataset and top-c; "
      "enumeration explodes at top-20/top-10 (paper: > 1 day) and only stays "
      "tractable at top-3, where QA/SFV still pay ~100x more than Alg. 1 "
      "(more entities per task).");

  const auto datasets = docs::benchutil::AllDatasets();
  const size_t m = docs::benchutil::SharedKb().knowledge_base.num_domains();

  TablePrinter table({"Dataset", "Top-20 Alg.1", "Top-20 Enum.",
                      "Top-10 Alg.1", "Top-10 Enum.", "Top-3 Alg.1",
                      "Top-3 Enum."});
  for (const auto& dataset : datasets) {
    std::vector<std::string> row = {dataset.name};
    for (size_t top_c : {size_t{20}, size_t{10}, size_t{3}}) {
      const auto observations = docs::LinkDataset(dataset, top_c);
      const auto timings = docs::TimeDataset(observations, m);
      row.push_back(TablePrinter::Fmt(timings.algorithm1_seconds, 3) + "s");
      if (timings.enumeration_capped) {
        row.push_back("> " +
                      TablePrinter::Fmt(timings.enumeration_estimated_seconds,
                                        1) +
                      "s (extrapolated)");
      } else {
        row.push_back(TablePrinter::Fmt(timings.enumeration_seconds, 3) + "s");
      }
    }
    table.AddRow(row);
  }
  table.Print(std::cout);
  std::cout << "\nNote: 'extrapolated' rows mirror the paper's '> 1 day' "
               "entries - the linking count exceeded the per-task budget, so "
               "the time is estimated from the measured cost per linking.\n";
  return 0;
}
