#!/usr/bin/env bash
# Serving-path benchmark harness (DESIGN.md §11): measures the epoch-tagged
# benefit cache + fused kernel against the seed-era cold path and emits one
# merged JSON artifact.
#
#   scripts/bench.sh [--quick] [--out=PATH] [--build-dir=DIR]
#
# Runs, from a Release build:
#   1. bench_micro --benchmark_filter=BM_ServeRequestTasks — ns/op and
#      allocations/op for the warm cached path, the seed-era cold path
#      (cache off + allocating reference kernel) and the fused cold path;
#   2. bench_server --mode=warm and --mode=mixed — end-to-end wire latency
#      percentiles (p50/p95/p99) over real TCP;
#   3. the §13 scaling sweeps: bench_server --mode=mixed over
#      --reactors={1,2,4} (at 4 connections) and --connections={1,2,4,8}
#      (at 2 reactors);
#   4. the §15 inference-mode sweep: bench_server --mode=mixed
#      --reinfer=100 in sync and async inference modes, comparing
#      per-op-type (RequestTasks vs SubmitAnswer) latency tails while the
#      periodic full EM churns;
# then merges 1+2 into BENCH_5.json, 3 into BENCH_7.json, 4 into
# BENCH_9.json, and the §16 benefit-index scaling sweep (bench_micro
# BM_ServeRequestTasksWarmSweep/WarmScan over n = 1k/10k/100k tasks, part
# of run 1) into BENCH_10.json (all at the repo root by default) and gates
# on the acceptance ratios: the warm path must do at least 5x fewer heap
# allocations per call than the seed-era cold path and win on wall time
# (§11); on multi-core hardware mixed throughput must increase
# monotonically from 1 reactor to N (§13) and async RequestTasks p99 must
# stay within 110% of sync's (§15); the index-served warm path must be
# sub-linear in the task count — ns/op at 100k tasks under 3x the 10k
# figure, where a linear path would be ~10x (§16). On a single-core host
# the scaling and async-p99 gates are skipped and the artifacts record the
# caveat instead — reactors and the inference thread can only interleave
# there, not overlap. The §16 gate runs everywhere: it compares two
# single-threaded runs of the same binary, so core count cannot bias it.
#
#   --quick      CI smoke sizing: shorter runs, artifacts written into the
#                build tree instead of replacing the committed BENCH_5.json
#                and BENCH_7.json. The acceptance gates still apply.
#   --build-dir  reuse an existing Release build tree (e.g. build-release
#                from scripts/ci.sh) instead of configuring build-bench.
set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

QUICK=0
OUT=""
BUILD_DIR=""
for arg in "$@"; do
  case "$arg" in
    --quick) QUICK=1 ;;
    --out=*) OUT="${arg#--out=}" ;;
    --build-dir=*) BUILD_DIR="${arg#--build-dir=}" ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

if [[ -z "$BUILD_DIR" ]]; then
  BUILD_DIR="$ROOT/build-bench"
  echo "=== [bench] configure + build ($BUILD_DIR, Release) ==="
  cmake -S "$ROOT" -B "$BUILD_DIR" -DCMAKE_BUILD_TYPE=Release >/dev/null
  cmake --build "$BUILD_DIR" -j"$JOBS" --target bench_micro bench_server \
    >/dev/null
fi
if [[ -z "$OUT" ]]; then
  if [[ "$QUICK" == 1 ]]; then OUT="$BUILD_DIR/BENCH_5.quick.json"
  else OUT="$ROOT/BENCH_5.json"; fi
fi
if [[ "$QUICK" == 1 ]]; then OUT7="$BUILD_DIR/BENCH_7.quick.json"
else OUT7="$ROOT/BENCH_7.json"; fi
if [[ "$QUICK" == 1 ]]; then OUT9="$BUILD_DIR/BENCH_9.quick.json"
else OUT9="$ROOT/BENCH_9.json"; fi
if [[ "$QUICK" == 1 ]]; then OUT10="$BUILD_DIR/BENCH_10.quick.json"
else OUT10="$ROOT/BENCH_10.json"; fi

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

if [[ "$QUICK" == 1 ]]; then
  MICRO_ARGS=(--benchmark_min_time=0.05)
  SERVER_CONNECTIONS=2
  SERVER_OPS=300
  SWEEP_OPS=150
else
  MICRO_ARGS=()
  SERVER_CONNECTIONS=4
  SERVER_OPS=2000
  SWEEP_OPS=1000
fi

echo "=== [bench] bench_micro serving path ==="
"$BUILD_DIR/bench/bench_micro" \
  --benchmark_filter='BM_ServeRequestTasks' \
  --benchmark_out="$TMP/micro.json" --benchmark_out_format=json \
  "${MICRO_ARGS[@]}"

echo "=== [bench] bench_server --mode=warm ==="
"$BUILD_DIR/bench/bench_server" --mode=warm \
  --connections="$SERVER_CONNECTIONS" --ops="$SERVER_OPS" \
  --json="$TMP/server_warm.json"

echo "=== [bench] bench_server --mode=mixed ==="
"$BUILD_DIR/bench/bench_server" --mode=mixed \
  --connections="$SERVER_CONNECTIONS" --ops="$SERVER_OPS" \
  --json="$TMP/server_mixed.json"

python3 - "$TMP/micro.json" "$TMP/server_warm.json" "$TMP/server_mixed.json" \
  "$OUT" "$QUICK" <<'PY'
import json
import sys

micro_path, warm_path, mixed_path, out_path, quick = sys.argv[1:6]
with open(micro_path) as f:
    micro = json.load(f)

TIME_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}

def entry(bench):
    return {
        "ns_per_op": bench["real_time"] * TIME_NS[bench["time_unit"]],
        "allocs_per_op": bench.get("allocs/op", 0.0),
        "iterations": bench["iterations"],
    }

benches = {
    b["name"]: entry(b)
    for b in micro["benchmarks"]
    if b.get("run_type", "iteration") == "iteration"
}
warm = benches["BM_ServeRequestTasksWarm"]
cold = benches["BM_ServeRequestTasksCold"]

def server(path):
    with open(path) as f:
        return json.load(f)

alloc_ratio = cold["allocs_per_op"] / max(warm["allocs_per_op"], 1.0)
speedup = cold["ns_per_op"] / warm["ns_per_op"]
artifact = {
    "generated_by": "scripts/bench.sh" + (" --quick" if quick == "1" else ""),
    "micro": benches,
    "derived": {
        "cold_over_warm_alloc_ratio": alloc_ratio,
        "cold_over_warm_speedup": speedup,
    },
    "server_warm": server(warm_path),
    "server_mixed": server(mixed_path),
}
with open(out_path, "w") as f:
    json.dump(artifact, f, indent=2, sort_keys=True)
    f.write("\n")

print(f"[bench] warm: {warm['ns_per_op']:.0f} ns/op, "
      f"{warm['allocs_per_op']:.1f} allocs/op")
print(f"[bench] cold (seed-era): {cold['ns_per_op']:.0f} ns/op, "
      f"{cold['allocs_per_op']:.1f} allocs/op")
print(f"[bench] alloc ratio {alloc_ratio:.1f}x, speedup {speedup:.1f}x "
      f"-> {out_path}")

# Acceptance gate (ISSUE 5): >= 5x fewer allocations per warm call and a
# wall-time win over the seed-era cold path.
if alloc_ratio < 5.0:
    sys.exit(f"FAIL: warm path allocates too much ({alloc_ratio:.1f}x < 5x)")
if speedup <= 1.0:
    sys.exit(f"FAIL: warm path is not faster than cold ({speedup:.2f}x)")
PY

# --- §16 benefit-index scaling sweep -> BENCH_10.json ------------------------
# Reuses the bench_micro run above: the WarmSweep (index on) and WarmScan
# (index off) families cover n = 1k/10k/100k tasks. Both are single-threaded
# runs of the same binary, so the sub-linearity gate applies on any host.
python3 - "$TMP/micro.json" "$OUT10" "$QUICK" <<'PY'
import json
import sys

micro_path, out_path, quick = sys.argv[1:4]
with open(micro_path) as f:
    micro = json.load(f)

TIME_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}

def entry(bench):
    return {
        "ns_per_op": bench["real_time"] * TIME_NS[bench["time_unit"]],
        "allocs_per_op": bench.get("allocs/op", 0.0),
        "iterations": bench["iterations"],
    }

benches = {
    b["name"]: entry(b)
    for b in micro["benchmarks"]
    if b.get("run_type", "iteration") == "iteration"
}
SIZES = (1000, 10000, 100000)
sweep = {n: benches[f"BM_ServeRequestTasksWarmSweep/n:{n}"] for n in SIZES}
scan = {n: benches[f"BM_ServeRequestTasksWarmScan/n:{n}"] for n in SIZES}

# The sub-linearity evidence: a 10x task-count step moves the index-served
# warm path by the growth ratio below (log-ish), while the scan moves ~10x.
growth_index = sweep[100000]["ns_per_op"] / sweep[10000]["ns_per_op"]
growth_scan = scan[100000]["ns_per_op"] / scan[10000]["ns_per_op"]
speedup_100k = scan[100000]["ns_per_op"] / sweep[100000]["ns_per_op"]
artifact = {
    "generated_by": "scripts/bench.sh" + (" --quick" if quick == "1" else ""),
    "warm_sweep_index": {str(n): sweep[n] for n in SIZES},
    "warm_sweep_scan": {str(n): scan[n] for n in SIZES},
    "derived": {
        "index_ns_growth_10k_to_100k": growth_index,
        "scan_ns_growth_10k_to_100k": growth_scan,
        "index_over_scan_speedup_at_100k": speedup_100k,
    },
    # Single-threaded ns/op comparisons of one binary against itself: no
    # single-core caveat applies (BENCH_7/9 precedent does not transfer).
    "single_core_caveat": False,
}
with open(out_path, "w") as f:
    json.dump(artifact, f, indent=2, sort_keys=True)
    f.write("\n")

for n in SIZES:
    print(f"[bench] warm n={n}: index {sweep[n]['ns_per_op']:.0f} ns/op, "
          f"scan {scan[n]['ns_per_op']:.0f} ns/op")
print(f"[bench] 10k->100k growth: index {growth_index:.2f}x, "
      f"scan {growth_scan:.2f}x; index speedup at 100k "
      f"{speedup_100k:.0f}x -> {out_path}")

# Acceptance gate (ISSUE 10): the index-served warm path must be sub-linear
# in n — a 10x task-count step may cost at most 3x the time (a linear warm
# path measures ~10x here; O(k log n) measures ~1x).
if growth_index >= 3.0:
    sys.exit(f"FAIL: warm index path is not sub-linear "
             f"({growth_index:.2f}x >= 3x for 10k -> 100k tasks)")
PY

# --- §13 scaling sweeps -> BENCH_7.json -------------------------------------
REACTOR_SWEEP=(1 2 4)
CONNECTION_SWEEP=(1 2 4 8)

for r in "${REACTOR_SWEEP[@]}"; do
  echo "=== [bench] bench_server --mode=mixed --reactors=$r (reactor sweep) ==="
  "$BUILD_DIR/bench/bench_server" --mode=mixed \
    --reactors="$r" --connections=4 --ops="$SWEEP_OPS" \
    --json="$TMP/reactors_$r.json"
done
for c in "${CONNECTION_SWEEP[@]}"; do
  echo "=== [bench] bench_server --mode=mixed --connections=$c (connection sweep) ==="
  "$BUILD_DIR/bench/bench_server" --mode=mixed \
    --reactors=2 --connections="$c" --ops="$SWEEP_OPS" \
    --json="$TMP/connections_$c.json"
done

CORES="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 1)"
python3 - "$TMP" "$OUT7" "$QUICK" "$CORES" \
  "${REACTOR_SWEEP[*]}" "${CONNECTION_SWEEP[*]}" <<'PY'
import json
import sys

tmp, out_path, quick, cores = sys.argv[1:5]
reactor_sweep = [int(r) for r in sys.argv[5].split()]
connection_sweep = [int(c) for c in sys.argv[6].split()]
cores = int(cores)

def load(path):
    with open(path) as f:
        return json.load(f)

reactors = {r: load(f"{tmp}/reactors_{r}.json") for r in reactor_sweep}
connections = {c: load(f"{tmp}/connections_{c}.json") for c in connection_sweep}

throughput = {r: reactors[r]["throughput_ops_s"] for r in reactor_sweep}
scaling = {
    f"{reactor_sweep[0]}_to_{r}": throughput[r] / throughput[reactor_sweep[0]]
    for r in reactor_sweep[1:]
}
single_core = cores <= 1
artifact = {
    "generated_by": "scripts/bench.sh" + (" --quick" if quick == "1" else ""),
    "hardware": {"cores": cores},
    "reactor_sweep": {str(r): reactors[r] for r in reactor_sweep},
    "connection_sweep": {str(c): connections[c] for c in connection_sweep},
    "derived": {
        "mixed_throughput_ops_s_by_reactors":
            {str(r): throughput[r] for r in reactor_sweep},
        "reactor_scaling": scaling,
    },
    # On one core the reactors time-slice instead of overlapping, so the
    # monotonic-throughput gate is meaningless there; the artifact says so
    # rather than silently passing.
    "single_core_caveat": single_core,
}
with open(out_path, "w") as f:
    json.dump(artifact, f, indent=2, sort_keys=True)
    f.write("\n")

for r in reactor_sweep:
    print(f"[bench] mixed, {r} reactor(s): {throughput[r]:,.0f} ops/s, "
          f"p99 {reactors[r]['p99_us']:.0f} us")
for c in connection_sweep:
    print(f"[bench] mixed, {c} connection(s) @ 2 reactors: "
          f"{connections[c]['throughput_ops_s']:,.0f} ops/s")
print(f"[bench] -> {out_path}")

# Acceptance gate (ISSUE 7): on multi-core hardware, mixed throughput must
# increase monotonically with the reactor count. Skipped (with the caveat
# recorded above) on a single core, where reactors can only interleave.
if single_core:
    print(f"[bench] single-core host ({cores} core): scaling gate skipped, "
          "caveat recorded in the artifact")
else:
    for lo, hi in zip(reactor_sweep, reactor_sweep[1:]):
        if throughput[hi] <= throughput[lo]:
            sys.exit(f"FAIL: mixed throughput did not scale "
                     f"{lo} -> {hi} reactors "
                     f"({throughput[lo]:,.0f} -> {throughput[hi]:,.0f} ops/s)")
PY

# --- §15 sync-vs-async inference sweep -> BENCH_9.json ----------------------
# Same mixed closed loop, but with the periodic full EM switched on
# (--reinfer): in sync mode every Nth SubmitAnswer runs EM under the state
# lock the serving path needs, so RequestTasks tails absorb the pass; in
# async mode the pass runs on the background inference thread and serving
# scores against the published snapshot. The artifact records the per-op-type
# percentiles for both runs and gates on the async RequestTasks p99.
REINFER=100
for inference in sync async; do
  ASYNC_FLAG=()
  if [[ "$inference" == async ]]; then ASYNC_FLAG=(--async); fi
  echo "=== [bench] bench_server --mode=mixed --reinfer=$REINFER ($inference inference) ==="
  "$BUILD_DIR/bench/bench_server" --mode=mixed "${ASYNC_FLAG[@]}" \
    --reinfer="$REINFER" --connections="$SERVER_CONNECTIONS" \
    --ops="$SERVER_OPS" --json="$TMP/inference_$inference.json"
done

python3 - "$TMP/inference_sync.json" "$TMP/inference_async.json" "$OUT9" \
  "$QUICK" "$CORES" <<'PY'
import json
import sys

sync_path, async_path, out_path, quick, cores = sys.argv[1:6]
cores = int(cores)

def load(path):
    with open(path) as f:
        return json.load(f)

sync_run = load(sync_path)
async_run = load(async_path)
single_core = cores <= 1

request_p99_ratio = async_run["request_p99_us"] / sync_run["request_p99_us"]
artifact = {
    "generated_by": "scripts/bench.sh" + (" --quick" if quick == "1" else ""),
    "hardware": {"cores": cores},
    "sync": sync_run,
    "async": async_run,
    "derived": {
        "async_over_sync_request_p95": (
            async_run["request_p95_us"] / sync_run["request_p95_us"]),
        "async_over_sync_request_p99": request_p99_ratio,
        "async_over_sync_submit_p99": (
            async_run["submit_p99_us"] / sync_run["submit_p99_us"]),
        "async_over_sync_throughput": (
            async_run["throughput_ops_s"] / sync_run["throughput_ops_s"]),
    },
    # One core means the inference thread time-slices with the reactor
    # instead of overlapping it, so absolute latencies are scheduler-noisy;
    # the p99 gate is skipped and the artifact says so (BENCH_7 precedent).
    "single_core_caveat": single_core,
}
with open(out_path, "w") as f:
    json.dump(artifact, f, indent=2, sort_keys=True)
    f.write("\n")

for name, run in (("sync", sync_run), ("async", async_run)):
    print(f"[bench] mixed+reinfer, {name}: "
          f"RequestTasks p95 {run['request_p95_us']:.0f} us, "
          f"p99 {run['request_p99_us']:.0f} us; "
          f"SubmitAnswer p99 {run['submit_p99_us']:.0f} us; "
          f"{run['throughput_ops_s']:,.0f} ops/s")
print(f"[bench] async/sync RequestTasks p99 ratio "
      f"{request_p99_ratio:.2f}x -> {out_path}")

# Acceptance gate (ISSUE 9): with EM in the loop, async RequestTasks p99
# must not exceed 110% of sync's — i.e. moving inference off the serving
# path must at least hold the tail, and in practice it collapses it.
if single_core:
    print(f"[bench] single-core host ({cores} core): async p99 gate "
          "skipped, caveat recorded in the artifact")
elif request_p99_ratio > 1.10:
    sys.exit(f"FAIL: async RequestTasks p99 is {request_p99_ratio:.2f}x "
             "sync (gate: <= 1.10x)")
PY

echo "=== [bench] OK ==="
