#!/usr/bin/env bash
# Serving-path benchmark harness (DESIGN.md §11): measures the epoch-tagged
# benefit cache + fused kernel against the seed-era cold path and emits one
# merged JSON artifact.
#
#   scripts/bench.sh [--quick] [--out=PATH] [--build-dir=DIR]
#
# Runs, from a Release build:
#   1. bench_micro --benchmark_filter=BM_ServeRequestTasks — ns/op and
#      allocations/op for the warm cached path, the seed-era cold path
#      (cache off + allocating reference kernel) and the fused cold path;
#   2. bench_server --mode=warm and --mode=mixed — end-to-end wire latency
#      percentiles (p50/p95/p99) over real TCP;
# then merges everything into the artifact (default: BENCH_5.json at the
# repo root) and gates on the §11 acceptance ratios: the warm path must do
# at least 5x fewer heap allocations per call than the seed-era cold path
# and win on wall time.
#
#   --quick      CI smoke sizing: shorter runs, artifact written into the
#                build tree instead of replacing the committed BENCH_5.json.
#                The acceptance gate still applies.
#   --build-dir  reuse an existing Release build tree (e.g. build-release
#                from scripts/ci.sh) instead of configuring build-bench.
set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

QUICK=0
OUT=""
BUILD_DIR=""
for arg in "$@"; do
  case "$arg" in
    --quick) QUICK=1 ;;
    --out=*) OUT="${arg#--out=}" ;;
    --build-dir=*) BUILD_DIR="${arg#--build-dir=}" ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

if [[ -z "$BUILD_DIR" ]]; then
  BUILD_DIR="$ROOT/build-bench"
  echo "=== [bench] configure + build ($BUILD_DIR, Release) ==="
  cmake -S "$ROOT" -B "$BUILD_DIR" -DCMAKE_BUILD_TYPE=Release >/dev/null
  cmake --build "$BUILD_DIR" -j"$JOBS" --target bench_micro bench_server \
    >/dev/null
fi
if [[ -z "$OUT" ]]; then
  if [[ "$QUICK" == 1 ]]; then OUT="$BUILD_DIR/BENCH_5.quick.json"
  else OUT="$ROOT/BENCH_5.json"; fi
fi

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

if [[ "$QUICK" == 1 ]]; then
  MICRO_ARGS=(--benchmark_min_time=0.05)
  SERVER_CONNECTIONS=2
  SERVER_OPS=300
else
  MICRO_ARGS=()
  SERVER_CONNECTIONS=4
  SERVER_OPS=2000
fi

echo "=== [bench] bench_micro serving path ==="
"$BUILD_DIR/bench/bench_micro" \
  --benchmark_filter='BM_ServeRequestTasks' \
  --benchmark_out="$TMP/micro.json" --benchmark_out_format=json \
  "${MICRO_ARGS[@]}"

echo "=== [bench] bench_server --mode=warm ==="
"$BUILD_DIR/bench/bench_server" --mode=warm \
  --connections="$SERVER_CONNECTIONS" --ops="$SERVER_OPS" \
  --json="$TMP/server_warm.json"

echo "=== [bench] bench_server --mode=mixed ==="
"$BUILD_DIR/bench/bench_server" --mode=mixed \
  --connections="$SERVER_CONNECTIONS" --ops="$SERVER_OPS" \
  --json="$TMP/server_mixed.json"

python3 - "$TMP/micro.json" "$TMP/server_warm.json" "$TMP/server_mixed.json" \
  "$OUT" "$QUICK" <<'PY'
import json
import sys

micro_path, warm_path, mixed_path, out_path, quick = sys.argv[1:6]
with open(micro_path) as f:
    micro = json.load(f)

TIME_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}

def entry(bench):
    return {
        "ns_per_op": bench["real_time"] * TIME_NS[bench["time_unit"]],
        "allocs_per_op": bench.get("allocs/op", 0.0),
        "iterations": bench["iterations"],
    }

benches = {
    b["name"]: entry(b)
    for b in micro["benchmarks"]
    if b.get("run_type", "iteration") == "iteration"
}
warm = benches["BM_ServeRequestTasksWarm"]
cold = benches["BM_ServeRequestTasksCold"]

def server(path):
    with open(path) as f:
        return json.load(f)

alloc_ratio = cold["allocs_per_op"] / max(warm["allocs_per_op"], 1.0)
speedup = cold["ns_per_op"] / warm["ns_per_op"]
artifact = {
    "generated_by": "scripts/bench.sh" + (" --quick" if quick == "1" else ""),
    "micro": benches,
    "derived": {
        "cold_over_warm_alloc_ratio": alloc_ratio,
        "cold_over_warm_speedup": speedup,
    },
    "server_warm": server(warm_path),
    "server_mixed": server(mixed_path),
}
with open(out_path, "w") as f:
    json.dump(artifact, f, indent=2, sort_keys=True)
    f.write("\n")

print(f"[bench] warm: {warm['ns_per_op']:.0f} ns/op, "
      f"{warm['allocs_per_op']:.1f} allocs/op")
print(f"[bench] cold (seed-era): {cold['ns_per_op']:.0f} ns/op, "
      f"{cold['allocs_per_op']:.1f} allocs/op")
print(f"[bench] alloc ratio {alloc_ratio:.1f}x, speedup {speedup:.1f}x "
      f"-> {out_path}")

# Acceptance gate (ISSUE 5): >= 5x fewer allocations per warm call and a
# wall-time win over the seed-era cold path.
if alloc_ratio < 5.0:
    sys.exit(f"FAIL: warm path allocates too much ({alloc_ratio:.1f}x < 5x)")
if speedup <= 1.0:
    sys.exit(f"FAIL: warm path is not faster than cold ({speedup:.2f}x)")
PY

echo "=== [bench] OK ==="
