#!/usr/bin/env python3
"""Repo-local style gate (scripts/ci.sh runs this before any build).

Checks, over every C++ file in src/, tests/, bench/ and examples/:

  1. Header guards follow the #ifndef DOCS_<DIR>_<FILE>_H_ convention
     (src/core/types.h -> DOCS_CORE_TYPES_H_, bench/bench_common.h ->
     DOCS_BENCH_BENCH_COMMON_H_); #pragma once is banned everywhere.
  2. Headers never say `using namespace` (it leaks into every includer).
  3. No `(void)` cast silences a fallible call: Status is [[nodiscard]] so
     the compiler flags a plain discard, and casting it away defeats the
     point. Handle the status or propagate it.
  4. #include lines are sorted within each contiguous block (blocks are
     separated by blank lines or non-include lines).
  5. Raw standard-library sync primitives (std::mutex, std::shared_mutex,
     std::lock_guard, std::unique_lock, std::condition_variable, ...) are
     banned everywhere except src/common/sync.h: all locking goes through
     the annotated docs::Mutex/MutexLock/CondVar wrappers so clang's
     -Wthread-safety analysis (DESIGN.md §14) sees every acquisition.
  6. Lock-order heuristic for the serving hierarchy (state -> shard ->
     assign/pool): a shard-stripe lock (`<expr>.mutex` / `<expr>->mutex`)
     acquired while a `MutexLock` on assign_mutex_ is still in scope is an
     inversion against ConcurrentDocsSystem's documented order and gets
     flagged. Textual and scope-approximate by design: the real checker is
     the clang analysis; this catches the mistake on gcc-only machines.
  7. IncrementalTruthInference mutators (OnAnswer, RunFullInference,
     SetWorkerQuality, EnsureWorker) may only be called on `inference_`
     inside src/core/docs_system.cc. In async mode (DESIGN.md §15) every
     inference mutation must flow through the InferenceService apply path
     so snapshots stay consistent with state; a direct call anywhere else
     bypasses the single-writer discipline the snapshots depend on.
  8. The engine's invalidation counters (task_epoch_, generation_) may only
     be mutated inside src/core/incremental_ti.{h,cc}. The benefit cache and
     index (DESIGN.md §11/§16) key their freshness on exactly these counters;
     a bump anywhere else would invalidate (or worse, fail to invalidate)
     cached state behind the engine's back.

Exit status is the number of findings (0 = clean). Run from anywhere:

    python3 scripts/lint.py [--root <repo>]
"""

import argparse
import os
import re
import sys

SOURCE_DIRS = ("src", "tests", "bench", "examples")
CPP_EXTENSIONS = (".h", ".hpp", ".cc", ".cpp")

# Fallible APIs whose Status result must never be (void)-discarded. Kept as
# an explicit list because a regex linter cannot see return types.
FALLIBLE_CALLS = (
    "OnAnswer", "SubmitAnswer", "SetWorkerQuality", "AddTasks", "LoadWorker",
    "SaveWorker", "SaveCheckpoint", "LoadCheckpoint", "SaveCheckpointWithRetry",
    "Append", "AppendRecord", "Put", "Merge", "Flush", "Compact", "Open",
    "AddConcept", "AddAlias", "AddCategory", "SaveKnowledgeBase",
    "LoadKnowledgeBase", "SaveDatasetTsv", "LoadDatasetTsv",
    "SaveStateCheckpoint", "LoadStateCheckpoint",
)

VOID_CAST_RE = re.compile(
    r"\(void\)\s*(?:[A-Za-z_][\w.]*(?:->|\.))*(?:%s)\s*\(" %
    "|".join(FALLIBLE_CALLS))
VOID_STATUS_RE = re.compile(r"\(void\)\s*[a-z_]*status\b")
USING_NAMESPACE_RE = re.compile(r"^\s*using\s+namespace\b")
INCLUDE_RE = re.compile(r'^\s*#\s*include\s+([<"][^<">]+[>"])')

# The annotated wrappers live here; it is the one file allowed to name the
# std primitives it wraps.
SYNC_WRAPPER_FILE = "src/common/sync.h"
RAW_SYNC_RE = re.compile(
    r"\bstd::(?:recursive_|timed_|recursive_timed_)?mutex\b"
    r"|\bstd::shared_(?:mutex|timed_mutex|lock)\b"
    r"|\bstd::(?:lock_guard|unique_lock|scoped_lock)\b"
    r"|\bstd::condition_variable(?:_any)?\b")
# Inference-engine mutators, single-writer discipline (docstring item 7).
# DocsSystem owns the engine; everything else mutates it through DocsSystem
# methods so the async apply path stays the only writer.
TI_MUTATOR_ALLOWED_FILES = ("src/core/docs_system.cc",)
TI_MUTATORS_RE = re.compile(
    r"\binference_\s*(?:->|\.)\s*"
    r"(?:OnAnswer|RunFullInference|SetWorkerQuality|EnsureWorker)\s*\(")

# Epoch/generation mutation discipline (docstring item 8). The engine owns
# the invalidation counters the benefit cache and index key on; only it may
# move them. The header is in the allowed list for the member initializers
# (`uint64_t generation_ = 1;`). The `(?!\w)` lookaheads keep longer
# identifiers (generation_tag_, for one) out of scope; branch one catches
# prefix ++/--, branch two catches postfix, assignment, and compound
# assignment.
EPOCH_MUTATION_ALLOWED_FILES = (
    "src/core/incremental_ti.h", "src/core/incremental_ti.cc")
EPOCH_MUTATION_RE = re.compile(
    r"(?:\+\+|--)\s*(?:[A-Za-z_][\w.\[\]]*(?:->|\.))*"
    r"(?:task_epoch_|generation_)(?!\w)"
    r"|(?:task_epoch_|generation_)(?!\w)"
    r"\s*(?:\[[^\]]*\]\s*)?(?:\+\+|--|[-+*/|&^]?=[^=])")

# `MutexLock assign(&assign_mutex_);` — any of the scoped guards, capturing
# the lock expression so the hierarchy check can classify it.
LOCK_ACQUIRE_RE = re.compile(
    r"\b(?:MutexLock|WriterLock|ReaderLock)\s+\w+\s*"
    r"\(\s*&\s*([A-Za-z_][\w.\->\[\]]*)\s*[,)]")
SHARD_STRIPE_RE = re.compile(r"(?:\.|->)mutex$")
LINE_COMMENT_RE = re.compile(r"//.*$")


def expected_guard(path):
    """DOCS_<COMPONENTS>_H_ for a header path relative to the repo root."""
    parts = path.replace(os.sep, "/").split("/")
    if parts[0] == "src":
        parts = parts[1:]  # src/ is the include root, not a guard component
    stem = "_".join(parts)
    stem = os.path.splitext(stem)[0]
    return "DOCS_" + re.sub(r"[^A-Za-z0-9]", "_", stem).upper() + "_H_"


def check_header_guard(path, lines, findings):
    guard = expected_guard(path)
    ifndef_index = None
    for i, line in enumerate(lines):
        stripped = line.strip()
        if stripped.startswith("#ifndef"):
            ifndef_index = i
            break
        if stripped and not stripped.startswith("//"):
            break
    if ifndef_index is None:
        findings.append((path, 1, f"missing header guard #ifndef {guard}"))
        return
    got = lines[ifndef_index].split()
    if len(got) < 2 or got[1] != guard:
        findings.append((path, ifndef_index + 1,
                         f"header guard is {got[1] if len(got) > 1 else '?'}, "
                         f"expected {guard}"))
        return
    define = lines[ifndef_index + 1].split() if ifndef_index + 1 < len(
        lines) else []
    if len(define) < 2 or define[0] != "#define" or define[1] != guard:
        findings.append((path, ifndef_index + 2,
                         f"#define {guard} must follow the #ifndef"))


def check_lock_order(path, lines, findings):
    """Flags a shard stripe acquired while assign_mutex_ is scoped-locked.

    Scope tracking is brace-depth arithmetic on comment-stripped lines — an
    approximation, but scoped guards in this codebase are always declared
    directly inside a braced block, which is exactly what this models.
    """
    depth = 0
    assign_depths = []  # brace depth at each live assign_mutex_ guard
    for i, line in enumerate(lines):
        code = LINE_COMMENT_RE.sub("", line)
        if "NOLINT(docs-lint)" in line:
            depth += code.count("{") - code.count("}")
            continue
        for match in LOCK_ACQUIRE_RE.finditer(code):
            target = match.group(1)
            if target.endswith("assign_mutex_"):
                assign_depths.append(depth)
            elif SHARD_STRIPE_RE.search(target) and assign_depths:
                findings.append(
                    (path, i + 1,
                     f"lock-order inversion: shard stripe {target} acquired "
                     "while assign_mutex_ is held (hierarchy is state -> "
                     "shard -> assign, DESIGN.md §14)"))
        depth += code.count("{") - code.count("}")
        while assign_depths and depth < assign_depths[-1]:
            assign_depths.pop()


def check_includes_sorted(path, lines, findings):
    block = []  # (line_number, include_text)
    def flush():
        nonlocal block
        texts = [t for _, t in block]
        if texts != sorted(texts):
            for (num, text), want in zip(block, sorted(texts)):
                if text != want:
                    findings.append(
                        (path, num,
                         f"includes unsorted within block: {text} before "
                         f"{want}"))
                    break
        block = []

    for i, line in enumerate(lines):
        m = INCLUDE_RE.match(line)
        if m:
            block.append((i + 1, m.group(1)))
        else:
            flush()
    flush()


def lint_file(root, rel, findings):
    path = os.path.join(root, rel)
    with open(path, encoding="utf-8", errors="replace") as handle:
        lines = handle.read().splitlines()
    is_header = rel.endswith((".h", ".hpp"))

    for i, line in enumerate(lines):
        if "#pragma once" in line:
            findings.append((rel, i + 1,
                             "#pragma once is banned; use an include guard"))
        if "NOLINT(docs-lint)" in line:
            continue
        if is_header and USING_NAMESPACE_RE.match(line):
            findings.append((rel, i + 1, "using namespace in a header"))
        if VOID_CAST_RE.search(line) or VOID_STATUS_RE.search(line):
            findings.append(
                (rel, i + 1,
                 "(void)-discarded Status: handle or propagate it"))
        if (rel.replace(os.sep, "/") != SYNC_WRAPPER_FILE
                and RAW_SYNC_RE.search(LINE_COMMENT_RE.sub("", line))):
            findings.append(
                (rel, i + 1,
                 "raw std sync primitive: use docs::Mutex/MutexLock/CondVar "
                 "from common/sync.h so -Wthread-safety sees the lock"))
        if (rel.replace(os.sep, "/") not in TI_MUTATOR_ALLOWED_FILES
                and TI_MUTATORS_RE.search(LINE_COMMENT_RE.sub("", line))):
            findings.append(
                (rel, i + 1,
                 "direct IncrementalTruthInference mutation outside "
                 "src/core/docs_system.cc: route it through DocsSystem so "
                 "the async inference service stays the single writer "
                 "(DESIGN.md §15)"))
        if (rel.replace(os.sep, "/") not in EPOCH_MUTATION_ALLOWED_FILES
                and EPOCH_MUTATION_RE.search(LINE_COMMENT_RE.sub("", line))):
            findings.append(
                (rel, i + 1,
                 "task_epoch_/generation_ mutated outside the inference "
                 "engine: the benefit cache and index key their freshness "
                 "on these counters, so only incremental_ti.{h,cc} may "
                 "move them (DESIGN.md §16)"))

    if is_header:
        check_header_guard(rel, lines, findings)
    check_includes_sorted(rel, lines, findings)
    check_lock_order(rel, lines, findings)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--root",
        default=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        help="repository root (default: parent of this script)")
    args = parser.parse_args()

    findings = []
    for top in SOURCE_DIRS:
        top_path = os.path.join(args.root, top)
        if not os.path.isdir(top_path):
            continue
        for dirpath, _, filenames in os.walk(top_path):
            for name in sorted(filenames):
                if name.endswith(CPP_EXTENSIONS):
                    rel = os.path.relpath(os.path.join(dirpath, name),
                                          args.root)
                    lint_file(args.root, rel, findings)

    for path, line, message in findings:
        print(f"{path}:{line}: {message}")
    if findings:
        print(f"lint.py: {len(findings)} finding(s)")
    else:
        print("lint.py: clean")
    return min(len(findings), 99)


if __name__ == "__main__":
    sys.exit(main())
