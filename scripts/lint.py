#!/usr/bin/env python3
"""Repo-local style gate (scripts/ci.sh runs this before any build).

Checks, over every C++ file in src/, tests/, bench/ and examples/:

  1. Header guards follow the #ifndef DOCS_<DIR>_<FILE>_H_ convention
     (src/core/types.h -> DOCS_CORE_TYPES_H_, bench/bench_common.h ->
     DOCS_BENCH_BENCH_COMMON_H_); #pragma once is banned everywhere.
  2. Headers never say `using namespace` (it leaks into every includer).
  3. No `(void)` cast silences a fallible call: Status is [[nodiscard]] so
     the compiler flags a plain discard, and casting it away defeats the
     point. Handle the status or propagate it.
  4. #include lines are sorted within each contiguous block (blocks are
     separated by blank lines or non-include lines).

Exit status is the number of findings (0 = clean). Run from anywhere:

    python3 scripts/lint.py [--root <repo>]
"""

import argparse
import os
import re
import sys

SOURCE_DIRS = ("src", "tests", "bench", "examples")
CPP_EXTENSIONS = (".h", ".hpp", ".cc", ".cpp")

# Fallible APIs whose Status result must never be (void)-discarded. Kept as
# an explicit list because a regex linter cannot see return types.
FALLIBLE_CALLS = (
    "OnAnswer", "SubmitAnswer", "SetWorkerQuality", "AddTasks", "LoadWorker",
    "SaveWorker", "SaveCheckpoint", "LoadCheckpoint", "SaveCheckpointWithRetry",
    "Append", "AppendRecord", "Put", "Merge", "Flush", "Compact", "Open",
    "AddConcept", "AddAlias", "AddCategory", "SaveKnowledgeBase",
    "LoadKnowledgeBase", "SaveDatasetTsv", "LoadDatasetTsv",
    "SaveStateCheckpoint", "LoadStateCheckpoint",
)

VOID_CAST_RE = re.compile(
    r"\(void\)\s*(?:[A-Za-z_][\w.]*(?:->|\.))*(?:%s)\s*\(" %
    "|".join(FALLIBLE_CALLS))
VOID_STATUS_RE = re.compile(r"\(void\)\s*[a-z_]*status\b")
USING_NAMESPACE_RE = re.compile(r"^\s*using\s+namespace\b")
INCLUDE_RE = re.compile(r'^\s*#\s*include\s+([<"][^<">]+[>"])')


def expected_guard(path):
    """DOCS_<COMPONENTS>_H_ for a header path relative to the repo root."""
    parts = path.replace(os.sep, "/").split("/")
    if parts[0] == "src":
        parts = parts[1:]  # src/ is the include root, not a guard component
    stem = "_".join(parts)
    stem = os.path.splitext(stem)[0]
    return "DOCS_" + re.sub(r"[^A-Za-z0-9]", "_", stem).upper() + "_H_"


def check_header_guard(path, lines, findings):
    guard = expected_guard(path)
    ifndef_index = None
    for i, line in enumerate(lines):
        stripped = line.strip()
        if stripped.startswith("#ifndef"):
            ifndef_index = i
            break
        if stripped and not stripped.startswith("//"):
            break
    if ifndef_index is None:
        findings.append((path, 1, f"missing header guard #ifndef {guard}"))
        return
    got = lines[ifndef_index].split()
    if len(got) < 2 or got[1] != guard:
        findings.append((path, ifndef_index + 1,
                         f"header guard is {got[1] if len(got) > 1 else '?'}, "
                         f"expected {guard}"))
        return
    define = lines[ifndef_index + 1].split() if ifndef_index + 1 < len(
        lines) else []
    if len(define) < 2 or define[0] != "#define" or define[1] != guard:
        findings.append((path, ifndef_index + 2,
                         f"#define {guard} must follow the #ifndef"))


def check_includes_sorted(path, lines, findings):
    block = []  # (line_number, include_text)
    def flush():
        nonlocal block
        texts = [t for _, t in block]
        if texts != sorted(texts):
            for (num, text), want in zip(block, sorted(texts)):
                if text != want:
                    findings.append(
                        (path, num,
                         f"includes unsorted within block: {text} before "
                         f"{want}"))
                    break
        block = []

    for i, line in enumerate(lines):
        m = INCLUDE_RE.match(line)
        if m:
            block.append((i + 1, m.group(1)))
        else:
            flush()
    flush()


def lint_file(root, rel, findings):
    path = os.path.join(root, rel)
    with open(path, encoding="utf-8", errors="replace") as handle:
        lines = handle.read().splitlines()
    is_header = rel.endswith((".h", ".hpp"))

    for i, line in enumerate(lines):
        if "#pragma once" in line:
            findings.append((rel, i + 1,
                             "#pragma once is banned; use an include guard"))
        if "NOLINT(docs-lint)" in line:
            continue
        if is_header and USING_NAMESPACE_RE.match(line):
            findings.append((rel, i + 1, "using namespace in a header"))
        if VOID_CAST_RE.search(line) or VOID_STATUS_RE.search(line):
            findings.append(
                (rel, i + 1,
                 "(void)-discarded Status: handle or propagate it"))

    if is_header:
        check_header_guard(rel, lines, findings)
    check_includes_sorted(rel, lines, findings)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--root",
        default=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        help="repository root (default: parent of this script)")
    args = parser.parse_args()

    findings = []
    for top in SOURCE_DIRS:
        top_path = os.path.join(args.root, top)
        if not os.path.isdir(top_path):
            continue
        for dirpath, _, filenames in os.walk(top_path):
            for name in sorted(filenames):
                if name.endswith(CPP_EXTENSIONS):
                    rel = os.path.relpath(os.path.join(dirpath, name),
                                          args.root)
                    lint_file(args.root, rel, findings)

    for path, line, message in findings:
        print(f"{path}:{line}: {message}")
    if findings:
        print(f"lint.py: {len(findings)} finding(s)")
    else:
        print("lint.py: clean")
    return min(len(findings), 99)


if __name__ == "__main__":
    sys.exit(main())
