#!/usr/bin/env bash
# CI entry point: build + test the Release config, the ASan+UBSan config
# (DOCS_SANITIZE=ON) and a TSan config (DOCS_SANITIZE=thread) focused on the
# thread pool and the parallel inference/assignment paths. Fails on the first
# broken build or test.
set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

# run_config <name> [test-filter] [cmake-args...]
# `test-filter` is a ctest -R regex; pass "" to run the full suite.
run_config() {
  local name="$1"
  local filter="${2-}"
  shift 2
  local dir="$ROOT/build-$name"
  echo "=== [$name] configure ==="
  cmake -S "$ROOT" -B "$dir" "$@"
  echo "=== [$name] build ==="
  cmake --build "$dir" -j"$JOBS"
  echo "=== [$name] ctest ==="
  if [[ -n "$filter" ]]; then
    ctest --test-dir "$dir" --output-on-failure -j"$JOBS" -R "$filter"
  else
    ctest --test-dir "$dir" --output-on-failure -j"$JOBS"
  fi
}

run_config release "" -DCMAKE_BUILD_TYPE=Release
run_config sanitize "" -DCMAKE_BUILD_TYPE=RelWithDebInfo -DDOCS_SANITIZE=ON
# TSan cannot be combined with ASan; it gets its own tree, scoped to the
# tests that actually exercise cross-thread execution.
run_config tsan "parallel_test|determinism_test|concurrency_test" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo -DDOCS_SANITIZE=thread

echo "=== CI OK ==="
