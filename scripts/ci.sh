#!/usr/bin/env bash
# CI entry point: build + test the Release config, then the ASan+UBSan
# config (DOCS_SANITIZE=ON). Fails on the first broken build or test.
set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

run_config() {
  local name="$1"
  shift
  local dir="$ROOT/build-$name"
  echo "=== [$name] configure ==="
  cmake -S "$ROOT" -B "$dir" "$@"
  echo "=== [$name] build ==="
  cmake --build "$dir" -j"$JOBS"
  echo "=== [$name] ctest ==="
  ctest --test-dir "$dir" --output-on-failure -j"$JOBS"
}

run_config release -DCMAKE_BUILD_TYPE=Release
run_config sanitize -DCMAKE_BUILD_TYPE=RelWithDebInfo -DDOCS_SANITIZE=ON

echo "=== CI OK ==="
