#!/usr/bin/env bash
# CI entry point, six stages (fails on the first broken one):
#   1. lint      — scripts/lint.py always; clang-tidy when installed.
#   2. thread-safety — clang -Wthread-safety -Werror build over the DOCS_*
#                  capability annotations (DESIGN.md §14); skipped with a
#                  notice when clang is not installed.
#   3. release   — Release build, full test suite.
#   4. strict    — -DDOCS_WERROR=ON -DDOCS_DEBUG_CHECKS=ON: curated -Werror
#                  set plus every DOCS_DCHECK* contract compiled in, run over
#                  the contract-heavy suites.
#   5. sanitize  — ASan+UBSan full suite, then a gateway smoke run (real TCP
#                  server + clients under ASan), then TSan scoped to the
#                  tests that exercise cross-thread execution.
#   6. bench     — scripts/bench.sh --quick from the release build: short
#                  micro + wire runs that gate on the warm serving path
#                  keeping its allocation/wall-time win (DESIGN.md §11),
#                  plus the §13 reactor/connection scaling sweeps (the
#                  monotonic-throughput gate applies on multi-core hosts).
set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

echo "=== [lint] scripts/lint.py ==="
python3 "$ROOT/scripts/lint.py" --root "$ROOT"
if command -v clang-tidy >/dev/null 2>&1; then
  echo "=== [lint] clang-tidy ==="
  cmake -S "$ROOT" -B "$ROOT/build-tidy" -DCMAKE_BUILD_TYPE=Debug \
    -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
  # Sources only; headers are covered through HeaderFilterRegex.
  find "$ROOT/src" -name '*.cc' -print0 |
    xargs -0 -n8 -P"$JOBS" clang-tidy -p "$ROOT/build-tidy" --quiet
else
  echo "=== [lint] clang-tidy not installed, skipping ==="
fi

# run_config <name> [test-filter] [cmake-args...]
# `test-filter` is a ctest -R regex; pass "" to run the full suite.
run_config() {
  local name="$1"
  local filter="${2-}"
  shift 2
  local dir="$ROOT/build-$name"
  echo "=== [$name] configure ==="
  cmake -S "$ROOT" -B "$dir" "$@"
  echo "=== [$name] build ==="
  cmake --build "$dir" -j"$JOBS"
  echo "=== [$name] ctest ==="
  if [[ -n "$filter" ]]; then
    ctest --test-dir "$dir" --output-on-failure -j"$JOBS" -R "$filter"
  else
    ctest --test-dir "$dir" --output-on-failure -j"$JOBS"
  fi
}

# Thread-safety analysis: a clang build with -Wthread-safety promoted to an
# error, checking the DOCS_* capability annotations (lock hierarchy, guarded
# fields, EXCLUDES contracts — DESIGN.md §14) over every target. Compile-only:
# the analysis is static, so there is nothing to run.
if command -v clang++ >/dev/null 2>&1; then
  echo "=== [thread-safety] clang -Wthread-safety build ==="
  cmake -S "$ROOT" -B "$ROOT/build-tsa" -DCMAKE_BUILD_TYPE=Debug \
    -DCMAKE_CXX_COMPILER=clang++ -DDOCS_THREAD_SAFETY=ON
  cmake --build "$ROOT/build-tsa" -j"$JOBS"
else
  echo "=== [thread-safety] clang++ not installed, skipping ==="
fi

run_config release "" -DCMAKE_BUILD_TYPE=Release
# Strict config: warnings are errors and the DCHECK-tier contracts are live.
# Scoped to the suites that hit the contract-instrumented paths hardest;
# check_test runs here with DOCS_DEBUG_CHECKS on (it also runs in every
# other config with them off — both halves of its matrix get covered).
run_config strict \
  "check_test|common_test|ti_test|incremental_ti_test|ota_test|golden_test|dve_test|baselines_test|benefit_index_test" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo -DDOCS_WERROR=ON -DDOCS_DEBUG_CHECKS=ON
run_config sanitize "" -DCMAKE_BUILD_TYPE=RelWithDebInfo -DDOCS_SANITIZE=ON
# Gateway smoke: start the TCP server on an ephemeral port, run real client
# round trips, and shut down cleanly — all under ASan+UBSan, so a leaked
# socket buffer or a use-after-close in the event loop fails CI here. Runs
# the multi-reactor configuration so the acceptor hand-off and per-reactor
# shutdown paths are exercised under the sanitizers, not just reactors=1.
echo "=== [sanitize] gateway smoke (serve_campaign under ASan, 2 reactors) ==="
"$ROOT/build-sanitize/examples/serve_campaign" --workers=4 --rounds=3 --reactors=2
# Chaos smoke: SIGKILL the gateway child three times mid-campaign while
# resilient clients retry through the outages, then verify exactly-once
# recovery (zero lost, zero duplicated, bitwise-equal posterior) — the
# parent-side verification runs under ASan+UBSan.
echo "=== [sanitize] chaos smoke (crash_recovery under ASan) ==="
"$ROOT/build-sanitize/examples/crash_recovery" --kills=3 --workers=4 --rounds=20
# TSan cannot be combined with ASan; it gets its own tree, scoped to the
# tests that actually exercise cross-thread execution (gateway_test runs a
# server thread against client threads; durability_test races checkpoints
# against submitters and restarts gateways under live clients;
# inference_service_test races serving calls and producer threads against
# the background inference thread and its snapshot publication).
run_config tsan \
  "sync_test|parallel_test|determinism_test|benefit_cache_test|benefit_index_test|inference_service_test|concurrency_test|gateway_test|durability_test|resilient_client_test" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo -DDOCS_SANITIZE=thread

echo "=== [bench] serving-path perf smoke (scripts/bench.sh --quick) ==="
# Short micro + wire runs from the release build; fails the build when the
# warm serving path loses its allocation/wall-time edge over the seed-era
# cold path (DESIGN.md §11).
"$ROOT/scripts/bench.sh" --quick --build-dir="$ROOT/build-release"

echo "=== CI OK ==="
